package distsim

import (
	"errors"
	"fmt"
	"slices"

	"repro/internal/core"
	"repro/internal/depgraph"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/telemetry"
)

// startCommit begins the commit conversation: the edge-free
// single-site fast path commits directly at its home site; everything
// else runs the hold conversation over every visited site in ascending
// order, exactly like the fault-tolerant wall-clock cluster (a direct
// multi-site commit would not be atomic under crashes).
func (e *Engine) startCommit(p *sproc) {
	p.commitStart = e.tl.Now()
	if !e.draining {
		e.phExec.Add(e.tl.Now() - p.attemptStart)
	}
	if !p.anyEdges && len(p.visited) == 1 {
		p.state = spHolding
		p.direct = true
		p.decideTime = p.commitStart
		sid := p.visited[0]
		if e.coordGate {
			// The coordinator-failure model logs direct commits before
			// sending them (the wire client plane's gated exactly-once
			// rule): the record is the only durable trace the commit
			// happened, and it stays until the terminal learns the
			// outcome (clientAckSim, acked in realCommit).
			if err := e.flog.Record(p.txn, fault.OutcomeCommit); err != nil {
				panic(fmt.Sprintf("distsim: decision log direct commit of T%d: %v", p.txn, err))
			}
			if n := e.flog.Len(); !e.draining && n > e.logHighWater {
				e.logHighWater = n
			}
			e.relAcks[p.txn] = map[int]struct{}{sid: {}, clientAckSim: {}}
		}
		e.tracef("commit T%d site=%d (direct)", p.txn, sid)
		at := e.sendToSite(sid, e.lat())
		e.tl.Schedule(at, ev{kind: evCommitArrive, p: p, txn: p.txn, site: sid})
		return
	}
	p.state = spHolding
	p.holdK = 0
	p.holdEdges = p.holdEdges[:0]
	e.tracef("hold-start T%d sites=%v", p.txn, p.visited)
	e.sendHold(p)
}

// sendHold fires the BeforeCommitHold boundary for the next
// participant and sends the prepare. A step-scheduled crash can unwind
// the attempt synchronously; the txn-id recheck catches that.
func (e *Engine) sendHold(p *sproc) {
	sid := p.visited[p.holdK]
	id := p.txn
	e.stepFired(dist.BeforeCommitHold, p, sid)
	if p.txn != id {
		return // the crash at this boundary doomed the conversation
	}
	at := e.sendToSite(sid, e.lat())
	e.tl.Schedule(at, ev{kind: evHoldArrive, p: p, txn: p.txn, site: sid, k: p.holdK})
}

// commitArrive lands the direct single-site commit.
func (e *Engine) commitArrive(p *sproc, sid int) {
	s := e.sites[sid]
	if s.down() {
		e.abortAttempt(p, core.ReasonSiteFailed, -1)
		return
	}
	var eff core.Effects
	st, err := s.cr.CommitInto(&eff, p.txn)
	if err != nil {
		if errors.Is(err, core.ErrUnknownTxn) {
			// The site crashed and recovered while the commit flew:
			// the transaction's volatile state died with it.
			e.abortAttempt(p, core.ReasonSiteFailed, -1)
			return
		}
		panic(fmt.Sprintf("distsim: direct commit T%d at site %d: %v", p.txn, sid, err))
	}
	if st != core.Committed {
		panic(fmt.Sprintf("distsim: edge-free T%d pseudo-committed at site %d", p.txn, sid))
	}
	s.cr.Forget(p.txn)
	e.ack(p.txn, sid) // gated model: the site's durable copy (no-op otherwise)
	e.processEffects(s, &eff)
	at := e.sendFromSite(s, e.cfg.SiteTime+e.lat())
	e.tl.Schedule(at, ev{kind: evCommitReply, p: p, txn: p.txn})
}

// holdArrive processes the prepare at participant k: the real
// CommitHoldInto forces the prepare record, the AfterPrepareForce
// boundary fires, and the reply carries the site's dependency-edge
// export back to the coordinator.
func (e *Engine) holdArrive(p *sproc, sid int) {
	s := e.sites[sid]
	if s.down() {
		// The message reached a dead site: no reply will come. The
		// crash that took the site down has already unwound every
		// transaction that visited it — reaching here means the crash
		// happened after this attempt died and a new attempt reused
		// the proc, which the staleness guard rejects; keep the
		// defensive abort for safety.
		e.abortAttempt(p, core.ReasonSiteFailed, -1)
		return
	}
	var eff core.Effects
	if _, err := s.cr.CommitHoldInto(&eff, p.txn); err != nil {
		panic(fmt.Sprintf("distsim: commit-hold T%d at site %d: %v", p.txn, sid, err))
	}
	s.prepTime[p.txn] = e.tl.Now()
	e.tracef("hold T%d site=%d (prepare forced)", p.txn, sid)
	e.span(telemetry.SpanHold, p.txn, sid, 0, 0, 0)
	e.processEffects(s, &eff)
	id := p.txn
	e.stepFired(dist.AfterPrepareForce, p, sid)
	if p.txn != id {
		return // crash at the boundary unwound the conversation
	}
	edges := s.cr.OutEdgesAppend(p.txn, nil)
	at := e.sendFromSite(s, e.cfg.SiteTime+e.lat())
	e.tl.Schedule(at, ev{kind: evHoldReply, p: p, txn: p.txn, site: sid, edges: edges})
}

// holdReply collects one participant's prepare ack at the coordinator:
// either the conversation moves to the next site, or — all sites
// holding — the BeforeDecisionForce boundary fires and the coordinator
// decides.
func (e *Engine) holdReply(p *sproc, edges []depgraph.Edge) {
	p.holdEdges = append(p.holdEdges, edges)
	p.holdK++
	if p.holdK < len(p.visited) {
		e.sendHold(p)
		return
	}
	id := p.txn
	e.stepFired(dist.BeforeDecisionForce, p, -1)
	if p.txn != id {
		return // pre-decision crash: prepared records will be presumed aborted
	}
	// The decision critical section: mirror every site's export, read
	// the global dependency set, decide.
	gdeps := 0
	for i, sid := range p.visited {
		live := e.filterLive(p.holdEdges[i])
		if len(live) > 0 {
			p.anyEdges = true
		}
		e.mirror.Observe(sid, p.txn, live)
	}
	gdeps = e.mirror.OutDegree(p.txn)
	if gdeps > 0 {
		if e.policy != nil {
			depth := e.mirror.LongestChainFrom(p.txn)
			verdict := e.policy.AdmitHold(gdeps, depth, e.heldSet)
			if verdict != dist.Hold {
				if verdict == dist.ShedTail {
					e.tailAborts++
				} else {
					e.admitRejects++
				}
				e.shedHold(p, depth)
				return
			}
		}
		p.state = spHeld
		p.heldAt = e.tl.Now()
		e.held++
		e.heldSet++
		if !e.draining {
			e.convoy.Add(e.heldSet)
			e.phHold.Add(e.tl.Now() - p.commitStart)
		}
		e.tracef("held T%d gdeps=%d depth=%d", p.txn, gdeps, e.heldSet)
		e.freeTerminal(p)
		return
	}
	if !e.draining {
		e.phHold.Add(e.tl.Now() - p.commitStart)
	}
	e.decideCommit(p)
}

// shedHold unwinds a conversation the hold policy refused: the holds
// already placed at every participant are revoked — recoverability
// makes the revocation non-cascading, which is what makes shedding
// cheap — and the logical transaction retries after a backoff, its
// terminal still occupied (the shed IS the back-pressure the unbounded
// protocol lacks: the terminal does not move on until the transaction
// lands for real or is held for good).
func (e *Engine) shedHold(p *sproc, depth int) {
	id := p.txn
	for _, sid := range p.visited {
		s := e.sites[sid]
		if s.down() {
			continue
		}
		var eff core.Effects
		if err := s.cr.RevokeInto(&eff, id, core.ReasonShed); err == nil {
			delete(s.prepTime, id)
			s.cr.Forget(id)
			e.processEffects(s, &eff)
		}
	}
	e.aborts++
	e.tracef("shed T%d (%s depth=%d held=%d)", id, e.policy.Name(), depth, e.heldSet)
	if e.spans != nil {
		e.span(telemetry.SpanShed, id, -1, int64(depth), int64(e.heldSet), 0)
		e.completeSpan(id, e.tl.Now()-p.attemptStart)
	}
	delete(e.procs, id)
	p.txn = 0
	p.state = spWaitRetry
	p.attempts++
	e.finalize(id)
	e.tl.Schedule(e.tl.Now()+e.backoff(p.attempts), ev{kind: evResubmit, p: p})
}

// decideCommit is the commit point: the decision is forced to the log
// (and the release-ack set opened) before any participant is released,
// the AfterDecisionBeforeRelease boundary fires, and the release
// fan-out starts.
func (e *Engine) decideCommit(p *sproc) {
	if err := e.flog.Record(p.txn, fault.OutcomeCommit); err != nil {
		panic(fmt.Sprintf("distsim: decision log commit of T%d: %v", p.txn, err))
	}
	if n := e.flog.Len(); !e.draining && n > e.logHighWater {
		e.logHighWater = n
	}
	pending := make(map[int]struct{}, len(p.visited)+1)
	for _, sid := range p.visited {
		pending[sid] = struct{}{}
	}
	if e.coordGate {
		pending[clientAckSim] = struct{}{}
	}
	e.relAcks[p.txn] = pending
	if p.state == spHeld {
		e.heldSet--
		wait := e.tl.Now() - p.heldAt
		e.heldWaits = append(e.heldWaits, wait)
		if !e.draining {
			e.phHeldWait.Add(wait)
		}
	}
	p.state = spReleasing
	p.decideTime = e.tl.Now()
	e.tracef("decide T%d commit", p.txn)
	e.span(telemetry.SpanDecide, p.txn, -1, 0, 0, int64((e.tl.Now()-p.commitStart)*1e9))
	e.stepFired(dist.AfterDecisionBeforeRelease, p, -1)
	// A crash at the boundary cannot unwind a releasing transaction —
	// its decision is logged; releases skip the down site and recovery
	// redoes them. A coordinator crash at the boundary stops the
	// fan-out here: the replacement coordinator adopts the logged
	// decision and finishes the releases at reconcile.
	if e.coordDown {
		return
	}
	p.relK = 0
	if e.policy != nil && e.policy.EagerSubtree() {
		// The batched release round: all participants at once (one
		// round-trip, relReply counts acks) instead of one site per
		// round-trip. The FIFO coordinator→site channels carry the
		// subtree's topological decide order to every shared site.
		for k, sid := range p.visited {
			e.stepFired(dist.DuringReleaseCascade, p, sid)
			if e.coordDown {
				return
			}
			at := e.sendToSite(sid, e.lat())
			e.tl.Schedule(at, ev{kind: evRelArrive, p: p, txn: p.txn, site: sid, k: k})
		}
		return
	}
	e.sendRelease(p)
}

// sendRelease fires the DuringReleaseCascade boundary for the next
// participant and sends the release (the real commit).
func (e *Engine) sendRelease(p *sproc) {
	sid := p.visited[p.relK]
	e.stepFired(dist.DuringReleaseCascade, p, sid)
	if e.coordDown {
		return // reconcile finishes the fan-out from the logged decision
	}
	at := e.sendToSite(sid, e.lat())
	e.tl.Schedule(at, ev{kind: evRelArrive, p: p, txn: p.txn, site: sid, k: p.relK})
}

// relArrive lands the real commit at participant k, or skips a down
// site (recovery will redo it from the prepared record — the decision
// is logged).
func (e *Engine) relArrive(p *sproc, sid int) {
	s := e.sites[sid]
	if s.down() {
		e.tracef("release T%d site=%d skipped (down, redo at restart)", p.txn, sid)
		at := e.sendFromSite(s, e.lat())
		e.tl.Schedule(at, ev{kind: evRelReply, p: p, txn: p.txn, site: sid})
		return
	}
	var eff core.Effects
	if err := s.cr.ReleaseInto(&eff, p.txn); err != nil {
		if errors.Is(err, core.ErrUnknownTxn) {
			// Crashed and already recovered: the restart redid the
			// commit from the prepared record and acked it.
			e.tracef("release T%d site=%d already redone", p.txn, sid)
		} else {
			panic(fmt.Sprintf("distsim: release T%d at site %d: %v", p.txn, sid, err))
		}
	} else {
		delete(s.prepTime, p.txn)
		s.cr.Forget(p.txn)
		e.ack(p.txn, sid)
		e.tracef("release T%d site=%d", p.txn, sid)
		e.span(telemetry.SpanRelease, p.txn, sid, 0, 0, 0)
		e.processEffects(s, &eff)
	}
	at := e.sendFromSite(s, e.cfg.SiteTime+e.lat())
	e.tl.Schedule(at, ev{kind: evRelReply, p: p, txn: p.txn, site: sid})
}

// relReply advances the release fan-out; after the last ack the real
// commit has landed everywhere that is up. Under the eager policy's
// batched round every release is already in flight and relK just
// counts acks.
func (e *Engine) relReply(p *sproc) {
	p.relK++
	if p.relK < len(p.visited) {
		if e.policy == nil || !e.policy.EagerSubtree() {
			e.sendRelease(p)
		}
		return
	}
	e.realCommit(p)
}

// realCommit finishes a logical transaction: its promise was honoured
// at every (live) site, conservation counts its steps, and its mirror
// node leaves the union graph — possibly releasing dependants.
func (e *Engine) realCommit(p *sproc) {
	id := p.txn
	e.realCommits++
	if !e.draining {
		e.respReal.Add(e.tl.Now() - p.submitted)
		e.phRelease.Add(e.tl.Now() - p.decideTime)
	}
	for _, st := range p.steps {
		e.committedSteps[st.Object]++
	}
	e.tracef("committed T%d", id)
	e.completeSpan(id, e.tl.Now()-p.submitted)
	if e.coordGate {
		// The terminal has the outcome: release the client gate (the
		// last ack truncates the decision).
		e.ack(id, clientAckSim)
	}
	if !p.freed {
		e.freeTerminal(p)
	}
	delete(e.procs, id)
	p.txn = 0
	e.finalize(id)
	if !e.inWindow && e.realCommits >= e.cfg.Warmup {
		e.openWindow()
	}
}

// freeTerminal completes the transaction from its terminal's
// perspective (§4.3: pseudo-commit is completion) and schedules the
// terminal's next submission after a think time.
func (e *Engine) freeTerminal(p *sproc) {
	p.freed = true
	e.pseudoCompl++
	if !e.draining {
		e.respPseudo.Add(e.tl.Now() - p.submitted)
	}
	if p.terminal >= 0 && !e.draining {
		e.tl.Schedule(e.think(), ev{kind: evSubmit, terminal: p.terminal})
	}
}

// ack confirms one participant's durable copy of a logged commit; the
// last ack truncates the decision.
func (e *Engine) ack(id core.TxnID, sid int) {
	pending := e.relAcks[id]
	if pending == nil {
		return
	}
	delete(pending, sid)
	if len(pending) == 0 {
		delete(e.relAcks, id)
		if err := e.flog.Truncate(id); err == nil {
			e.tracef("truncate T%d", id)
		}
	}
}

// stepFired counts a protocol-step boundary and fires any crash the
// schedule placed on it. site -1 (a coordinator-level step) defaults
// the victim to the transaction's first participant.
func (e *Engine) stepFired(step dist.Step, p *sproc, site int) {
	e.stepCount[step]++
	e.tracef("step %s T%d site=%d n=%d", step, p.txn, site, e.stepCount[step])
	if e.draining {
		// The crash schedule covers the measured run only; the drain
		// phase is simulated time the unbounded run never had.
		return
	}
	for i := range e.cfg.Crashes {
		cp := &e.cfg.Crashes[i]
		if e.crashFired[i] || cp.Step != step || e.stepCount[step] != cp.Occurrence {
			continue
		}
		e.crashFired[i] = true
		victim := cp.Site
		if victim < 0 {
			victim = site
			if victim < 0 {
				victim = p.visited[0]
			}
		}
		e.crash(victim, cp.RestartAfter)
	}
	for i := range e.cfg.CoordCrashes {
		cp := &e.cfg.CoordCrashes[i]
		if e.coordCrashFired[i] || cp.Step != step || e.stepCount[step] != cp.Occurrence {
			continue
		}
		e.coordCrashFired[i] = true
		e.coordCrash(cp.RestartAfter)
	}
}

// crash fails a site at the current virtual instant: volatile state is
// dropped (the real fault.Crashable.Crash), its union-graph
// contribution is purged, and every live transaction that touched it
// is unwound — active, blocked and mid-conversation attempts abort
// (and retry); unlogged holds are revoked at the surviving sites and
// their logical transactions re-run detached; releasing transactions
// are past their commit point and proceed, skipping the dead site.
func (e *Engine) crash(sid int, restartAfter float64) {
	s := e.sites[sid]
	if s.down() {
		return
	}
	if err := s.cr.Crash(); err != nil {
		panic(fmt.Sprintf("distsim: crash site %d: %v", sid, err))
	}
	e.crashes++
	e.tracef("crash site=%d", sid)
	e.mirror.DropSite(sid)
	clear(s.parked)
	ids := make([]core.TxnID, 0, len(e.procs))
	for id, p := range e.procs {
		if p.visitedHas(sid) {
			ids = append(ids, id)
		}
	}
	slices.Sort(ids)
	for _, id := range ids {
		p := e.procs[id]
		if p == nil || p.txn != id {
			continue // an earlier iteration's cascade already handled it
		}
		p.doomed = true
		switch p.state {
		case spReleasing:
			// Past the commit point: the logged decision lands
			// everywhere, crash or not.
		case spHeld:
			e.revokeHeld(p, sid)
		default: // spActive, spBlocked, spHolding
			e.abortAttempt(p, core.ReasonSiteFailed, -1)
		}
	}
	if restartAfter > 0 {
		e.tl.Schedule(e.tl.Now()+restartAfter, ev{kind: evRestart, site: sid})
	}
}

// revokeHeld unwinds an unlogged held pseudo-commit after a crash:
// the hold is revoked at every surviving site (presumed abort's
// coordinator half), and the logical transaction re-runs detached —
// its terminal already moved on at pseudo-commit time.
func (e *Engine) revokeHeld(p *sproc, crashed int) {
	id := p.txn
	e.heldSet--
	e.heldAborts++
	for _, sid := range p.visited {
		if sid == crashed {
			continue
		}
		s := e.sites[sid]
		if s.down() {
			continue
		}
		var eff core.Effects
		if err := s.cr.RevokeInto(&eff, id, core.ReasonSiteFailed); err == nil {
			delete(s.prepTime, id)
			s.cr.Forget(id)
			e.processEffects(s, &eff)
		}
	}
	e.tracef("revoke T%d (site %d failed)", id, crashed)
	delete(e.procs, id)
	p.txn = 0
	p.state = spWaitRetry
	p.attempts++
	e.finalize(id)
	e.tl.Schedule(e.tl.Now()+e.backoff(p.attempts), ev{kind: evResubmit, p: p})
}

// restartSite recovers a crashed site: the real presumed-abort
// recovery runs (redo logged commits, discard the rest), redone
// transactions ack their release, and in-doubt windows close.
func (e *Engine) restartSite(s *simSite) {
	rep, err := s.cr.Restart()
	if err != nil {
		panic(fmt.Sprintf("distsim: restart site %d: %v", s.idx, err))
	}
	e.restarts++
	now := e.tl.Now()
	for _, id := range rep.Redone {
		if t0, ok := s.prepTime[id]; ok {
			if !e.draining {
				e.inDoubt.Add(now - t0)
			}
			delete(s.prepTime, id)
		}
		e.span(telemetry.SpanRedo, id, s.idx, 0, 0, 0)
		e.ack(id, s.idx)
	}
	for _, id := range rep.PresumedAborted {
		if t0, ok := s.prepTime[id]; ok {
			if !e.draining {
				e.inDoubt.Add(now - t0)
			}
			delete(s.prepTime, id)
		}
	}
	e.redone += len(rep.Redone)
	e.presumed += len(rep.PresumedAborted)
	e.tracef("restart site=%d redone=%v presumed=%v", s.idx, rep.Redone, rep.PresumedAborted)
	if e.coordGate {
		// A coordinator-adopted conversation pending only on this site
		// (its release was redone from the prepared record just now)
		// completes here: the site ack above may have left just the
		// client gate open.
		for _, id := range rep.Redone {
			if p := e.procs[id]; p != nil && p.txn == id && p.state == spReleasing {
				e.maybeCompleteAdopted(p)
			}
		}
	}
}

// coordCrash kills the coordinator at the current virtual instant. Its
// volatile state — the union-graph mirror and the release-ack table —
// is gone; the decision log survives. Every conversation that reached
// its commit point (spReleasing, or a logged direct commit in flight)
// is adopted by the replacement coordinator at restart; every unlogged
// hold is presumed aborted; everything earlier is orphaned — the
// terminal (co-located with the coordinator) lost its session and
// retries, and the attempt's site-side state waits for the
// reconcile to be aborted away.
func (e *Engine) coordCrash(restartAfter float64) {
	if e.coordDown {
		return
	}
	e.coordDown = true
	e.coordCrashes++
	e.coordRestartAt = e.tl.Now() + restartAfter
	e.tracef("coordcrash")
	e.mirror = depgraph.NewMirror()
	clear(e.relAcks)
	e.tl.Schedule(e.coordRestartAt, ev{kind: evCoordRestart})
	ids := make([]core.TxnID, 0, len(e.procs))
	for id := range e.procs {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		p := e.procs[id]
		if p == nil || p.txn != id {
			continue
		}
		switch {
		case p.state == spReleasing || (p.state == spHolding && p.direct):
			// Decision logged (the direct path logs before sending):
			// survives the crash; the replacement adopts it.
			p.adopted = true
		case p.state == spHeld:
			// Unlogged hold: presumed abort. The revocation itself must
			// wait for the replacement coordinator (nothing can reach
			// the sites until then); the logical transaction re-runs
			// detached, exactly as after a crash-revoked hold.
			e.heldSet--
			e.heldAborts++
			e.coordRevoked++
			e.orphans = append(e.orphans, orphanRec{id: id, visited: slices.Clone(p.visited)})
			e.tracef("coordcrash-revoke T%d", id)
			delete(e.procs, id)
			p.txn = 0
			p.state = spWaitRetry
			p.attempts++
			e.tl.Schedule(e.tl.Now()+e.backoff(p.attempts), ev{kind: evResubmit, p: p})
		default: // spActive, spBlocked, spHolding (hold phase)
			if p.state == spBlocked {
				delete(e.sites[p.blockedSite].parked, id)
			}
			e.orphans = append(e.orphans, orphanRec{id: id, visited: slices.Clone(p.visited)})
			e.aborts++
			e.coordOrphans++
			e.tracef("orphan T%d (coordinator failed)", id)
			delete(e.procs, id)
			p.txn = 0
			p.state = spWaitRetry
			p.attempts++
			e.tl.Schedule(e.tl.Now()+e.backoff(p.attempts), ev{kind: evResubmit, p: p})
		}
	}
}

// coordRestart is the replacement coordinator's startup: adopt every
// logged commit decision, finish its releases (or redo a direct
// commit the crash beat to its site), then reconcile the orphans away
// — abort stranded actives, revoke unlogged holds. The sequence is
// wire.StartCoordinator's, pinned on the virtual clock.
func (e *Engine) coordRestart() {
	e.coordDown = false
	e.coordRestarts++
	var adopted []core.TxnID
	if ol, ok := e.flog.(interface {
		OutcomeIDs(fault.Outcome) []core.TxnID
	}); ok {
		adopted = ol.OutcomeIDs(fault.OutcomeCommit)
	}
	e.coordAdopted += len(adopted)
	e.tracef("coordrestart adopted=%d", len(adopted))
	now := e.tl.Now()
	for _, id := range adopted {
		p := e.procs[id]
		if p == nil || p.txn != id || !p.adopted {
			e.tracef("adopt T%d: no live conversation", id)
			continue
		}
		pending := make(map[int]struct{}, len(p.visited)+1)
		for _, sid := range p.visited {
			pending[sid] = struct{}{}
		}
		pending[clientAckSim] = struct{}{}
		e.relAcks[id] = pending
		for _, sid := range p.visited {
			s := e.sites[sid]
			if s.down() {
				continue // its restart redoes from the prepared record and acks
			}
			if p.direct {
				e.adoptDirect(p, s)
			} else {
				e.adoptRelease(p, s, now)
			}
		}
		p.adopted = false
		e.maybeCompleteAdopted(p)
	}
	orphans := e.orphans
	e.orphans = nil
	for _, o := range orphans {
		for _, sid := range o.visited {
			s := e.sites[sid]
			if s.down() {
				// Volatile state died with the site; its restart
				// presumed-aborts any prepared record (no log entry).
				continue
			}
			var eff core.Effects
			if err := s.cr.AbortInto(&eff, o.id); err == nil {
				s.cr.Forget(o.id)
				e.tracef("adopt-abort T%d site=%d", o.id, sid)
				e.processEffects(s, &eff)
				continue
			}
			// A prepared hold answers ErrTxnTerminated; revoke it.
			var eff2 core.Effects
			if err := s.cr.RevokeInto(&eff2, o.id, core.ReasonSiteFailed); err == nil {
				if t0, ok := s.prepTime[o.id]; ok {
					if !e.draining {
						e.inDoubt.Add(now - t0)
					}
					delete(s.prepTime, o.id)
				}
				s.cr.Forget(o.id)
				e.tracef("adopt-revoke T%d site=%d", o.id, sid)
				e.processEffects(s, &eff2)
			}
		}
	}
}

// adoptDirect resolves one adopted direct commit at its (single) site:
// if the logged commit never landed there (the crash beat the message),
// redo it; otherwise the site already committed and forgot it.
func (e *Engine) adoptDirect(p *sproc, s *simSite) {
	switch s.cr.TxnState(p.txn) {
	case "active", "blocked":
		var eff core.Effects
		st, err := s.cr.CommitInto(&eff, p.txn)
		if err != nil {
			panic(fmt.Sprintf("distsim: adopt-commit T%d at site %d: %v", p.txn, s.idx, err))
		}
		if st != core.Committed {
			panic(fmt.Sprintf("distsim: adopt-commit T%d pseudo-committed at site %d", p.txn, s.idx))
		}
		s.cr.Forget(p.txn)
		e.tracef("adopt-commit T%d site=%d (direct redo)", p.txn, s.idx)
		e.processEffects(s, &eff)
	default:
		e.tracef("adopt-commit T%d site=%d (already landed)", p.txn, s.idx)
	}
	e.ack(p.txn, s.idx)
}

// adoptRelease finishes one adopted release at a live site: released
// now, or confirmed already released before (or during) the outage.
func (e *Engine) adoptRelease(p *sproc, s *simSite, now float64) {
	var eff core.Effects
	if err := s.cr.ReleaseInto(&eff, p.txn); err != nil {
		if !errors.Is(err, core.ErrUnknownTxn) {
			panic(fmt.Sprintf("distsim: adopt-release T%d at site %d: %v", p.txn, s.idx, err))
		}
		e.tracef("adopt-release T%d site=%d (already released)", p.txn, s.idx)
	} else {
		if t0, ok := s.prepTime[p.txn]; ok {
			if !e.draining {
				e.inDoubt.Add(now - t0)
			}
			delete(s.prepTime, p.txn)
		}
		s.cr.Forget(p.txn)
		e.tracef("adopt-release T%d site=%d", p.txn, s.idx)
		e.processEffects(s, &eff)
	}
	e.ack(p.txn, s.idx)
}

// maybeCompleteAdopted finishes an adopted conversation whose every
// site has acked — only the client gate remains — by counting its real
// commit (which acks the gate and truncates the decision).
func (e *Engine) maybeCompleteAdopted(p *sproc) {
	rem := e.relAcks[p.txn]
	if len(rem) != 1 {
		return
	}
	if _, only := rem[clientAckSim]; only {
		e.realCommit(p)
	}
}
