package distsim

import (
	"errors"
	"fmt"
	"slices"

	"repro/internal/core"
	"repro/internal/depgraph"
	"repro/internal/dist"
	"repro/internal/fault"
)

// startCommit begins the commit conversation: the edge-free
// single-site fast path commits directly at its home site; everything
// else runs the hold conversation over every visited site in ascending
// order, exactly like the fault-tolerant wall-clock cluster (a direct
// multi-site commit would not be atomic under crashes).
func (e *Engine) startCommit(p *sproc) {
	p.commitStart = e.tl.Now()
	if !e.draining {
		e.phExec.Add(e.tl.Now() - p.attemptStart)
	}
	if !p.anyEdges && len(p.visited) == 1 {
		p.state = spHolding
		p.decideTime = p.commitStart
		sid := p.visited[0]
		e.tracef("commit T%d site=%d (direct)", p.txn, sid)
		at := e.sendToSite(sid, e.lat())
		e.tl.Schedule(at, ev{kind: evCommitArrive, p: p, txn: p.txn, site: sid})
		return
	}
	p.state = spHolding
	p.holdK = 0
	p.holdEdges = p.holdEdges[:0]
	e.tracef("hold-start T%d sites=%v", p.txn, p.visited)
	e.sendHold(p)
}

// sendHold fires the BeforeCommitHold boundary for the next
// participant and sends the prepare. A step-scheduled crash can unwind
// the attempt synchronously; the txn-id recheck catches that.
func (e *Engine) sendHold(p *sproc) {
	sid := p.visited[p.holdK]
	id := p.txn
	e.stepFired(dist.BeforeCommitHold, p, sid)
	if p.txn != id {
		return // the crash at this boundary doomed the conversation
	}
	at := e.sendToSite(sid, e.lat())
	e.tl.Schedule(at, ev{kind: evHoldArrive, p: p, txn: p.txn, site: sid, k: p.holdK})
}

// commitArrive lands the direct single-site commit.
func (e *Engine) commitArrive(p *sproc, sid int) {
	s := e.sites[sid]
	if s.down() {
		e.abortAttempt(p, core.ReasonSiteFailed, -1)
		return
	}
	var eff core.Effects
	st, err := s.cr.CommitInto(&eff, p.txn)
	if err != nil {
		if errors.Is(err, core.ErrUnknownTxn) {
			// The site crashed and recovered while the commit flew:
			// the transaction's volatile state died with it.
			e.abortAttempt(p, core.ReasonSiteFailed, -1)
			return
		}
		panic(fmt.Sprintf("distsim: direct commit T%d at site %d: %v", p.txn, sid, err))
	}
	if st != core.Committed {
		panic(fmt.Sprintf("distsim: edge-free T%d pseudo-committed at site %d", p.txn, sid))
	}
	s.cr.Forget(p.txn)
	e.processEffects(s, &eff)
	at := e.sendFromSite(s, e.cfg.SiteTime+e.lat())
	e.tl.Schedule(at, ev{kind: evCommitReply, p: p, txn: p.txn})
}

// holdArrive processes the prepare at participant k: the real
// CommitHoldInto forces the prepare record, the AfterPrepareForce
// boundary fires, and the reply carries the site's dependency-edge
// export back to the coordinator.
func (e *Engine) holdArrive(p *sproc, sid int) {
	s := e.sites[sid]
	if s.down() {
		// The message reached a dead site: no reply will come. The
		// crash that took the site down has already unwound every
		// transaction that visited it — reaching here means the crash
		// happened after this attempt died and a new attempt reused
		// the proc, which the staleness guard rejects; keep the
		// defensive abort for safety.
		e.abortAttempt(p, core.ReasonSiteFailed, -1)
		return
	}
	var eff core.Effects
	if _, err := s.cr.CommitHoldInto(&eff, p.txn); err != nil {
		panic(fmt.Sprintf("distsim: commit-hold T%d at site %d: %v", p.txn, sid, err))
	}
	s.prepTime[p.txn] = e.tl.Now()
	e.tracef("hold T%d site=%d (prepare forced)", p.txn, sid)
	e.processEffects(s, &eff)
	id := p.txn
	e.stepFired(dist.AfterPrepareForce, p, sid)
	if p.txn != id {
		return // crash at the boundary unwound the conversation
	}
	edges := s.cr.OutEdgesAppend(p.txn, nil)
	at := e.sendFromSite(s, e.cfg.SiteTime+e.lat())
	e.tl.Schedule(at, ev{kind: evHoldReply, p: p, txn: p.txn, site: sid, edges: edges})
}

// holdReply collects one participant's prepare ack at the coordinator:
// either the conversation moves to the next site, or — all sites
// holding — the BeforeDecisionForce boundary fires and the coordinator
// decides.
func (e *Engine) holdReply(p *sproc, edges []depgraph.Edge) {
	p.holdEdges = append(p.holdEdges, edges)
	p.holdK++
	if p.holdK < len(p.visited) {
		e.sendHold(p)
		return
	}
	id := p.txn
	e.stepFired(dist.BeforeDecisionForce, p, -1)
	if p.txn != id {
		return // pre-decision crash: prepared records will be presumed aborted
	}
	// The decision critical section: mirror every site's export, read
	// the global dependency set, decide.
	gdeps := 0
	for i, sid := range p.visited {
		live := e.filterLive(p.holdEdges[i])
		if len(live) > 0 {
			p.anyEdges = true
		}
		e.mirror.Observe(sid, p.txn, live)
	}
	gdeps = e.mirror.OutDegree(p.txn)
	if gdeps > 0 {
		if e.policy != nil {
			depth := e.mirror.LongestChainFrom(p.txn)
			verdict := e.policy.AdmitHold(gdeps, depth, e.heldSet)
			if verdict != dist.Hold {
				if verdict == dist.ShedTail {
					e.tailAborts++
				} else {
					e.admitRejects++
				}
				e.shedHold(p, depth)
				return
			}
		}
		p.state = spHeld
		p.heldAt = e.tl.Now()
		e.held++
		e.heldSet++
		if !e.draining {
			e.convoy.Add(e.heldSet)
			e.phHold.Add(e.tl.Now() - p.commitStart)
		}
		e.tracef("held T%d gdeps=%d depth=%d", p.txn, gdeps, e.heldSet)
		e.freeTerminal(p)
		return
	}
	if !e.draining {
		e.phHold.Add(e.tl.Now() - p.commitStart)
	}
	e.decideCommit(p)
}

// shedHold unwinds a conversation the hold policy refused: the holds
// already placed at every participant are revoked — recoverability
// makes the revocation non-cascading, which is what makes shedding
// cheap — and the logical transaction retries after a backoff, its
// terminal still occupied (the shed IS the back-pressure the unbounded
// protocol lacks: the terminal does not move on until the transaction
// lands for real or is held for good).
func (e *Engine) shedHold(p *sproc, depth int) {
	id := p.txn
	for _, sid := range p.visited {
		s := e.sites[sid]
		if s.down() {
			continue
		}
		var eff core.Effects
		if err := s.cr.RevokeInto(&eff, id, core.ReasonShed); err == nil {
			delete(s.prepTime, id)
			s.cr.Forget(id)
			e.processEffects(s, &eff)
		}
	}
	e.aborts++
	e.tracef("shed T%d (%s depth=%d held=%d)", id, e.policy.Name(), depth, e.heldSet)
	delete(e.procs, id)
	p.txn = 0
	p.state = spWaitRetry
	p.attempts++
	e.finalize(id)
	e.tl.Schedule(e.tl.Now()+e.backoff(p.attempts), ev{kind: evResubmit, p: p})
}

// decideCommit is the commit point: the decision is forced to the log
// (and the release-ack set opened) before any participant is released,
// the AfterDecisionBeforeRelease boundary fires, and the release
// fan-out starts.
func (e *Engine) decideCommit(p *sproc) {
	if err := e.flog.Record(p.txn, fault.OutcomeCommit); err != nil {
		panic(fmt.Sprintf("distsim: decision log commit of T%d: %v", p.txn, err))
	}
	if n := e.flog.Len(); !e.draining && n > e.logHighWater {
		e.logHighWater = n
	}
	pending := make(map[int]struct{}, len(p.visited))
	for _, sid := range p.visited {
		pending[sid] = struct{}{}
	}
	e.relAcks[p.txn] = pending
	if p.state == spHeld {
		e.heldSet--
		wait := e.tl.Now() - p.heldAt
		e.heldWaits = append(e.heldWaits, wait)
		if !e.draining {
			e.phHeldWait.Add(wait)
		}
	}
	p.state = spReleasing
	p.decideTime = e.tl.Now()
	e.tracef("decide T%d commit", p.txn)
	e.stepFired(dist.AfterDecisionBeforeRelease, p, -1)
	// A crash at the boundary cannot unwind a releasing transaction —
	// its decision is logged; releases skip the down site and recovery
	// redoes them.
	p.relK = 0
	if e.policy != nil && e.policy.EagerSubtree() {
		// The batched release round: all participants at once (one
		// round-trip, relReply counts acks) instead of one site per
		// round-trip. The FIFO coordinator→site channels carry the
		// subtree's topological decide order to every shared site.
		for k, sid := range p.visited {
			e.stepFired(dist.DuringReleaseCascade, p, sid)
			at := e.sendToSite(sid, e.lat())
			e.tl.Schedule(at, ev{kind: evRelArrive, p: p, txn: p.txn, site: sid, k: k})
		}
		return
	}
	e.sendRelease(p)
}

// sendRelease fires the DuringReleaseCascade boundary for the next
// participant and sends the release (the real commit).
func (e *Engine) sendRelease(p *sproc) {
	sid := p.visited[p.relK]
	e.stepFired(dist.DuringReleaseCascade, p, sid)
	at := e.sendToSite(sid, e.lat())
	e.tl.Schedule(at, ev{kind: evRelArrive, p: p, txn: p.txn, site: sid, k: p.relK})
}

// relArrive lands the real commit at participant k, or skips a down
// site (recovery will redo it from the prepared record — the decision
// is logged).
func (e *Engine) relArrive(p *sproc, sid int) {
	s := e.sites[sid]
	if s.down() {
		e.tracef("release T%d site=%d skipped (down, redo at restart)", p.txn, sid)
		at := e.sendFromSite(s, e.lat())
		e.tl.Schedule(at, ev{kind: evRelReply, p: p, txn: p.txn, site: sid})
		return
	}
	var eff core.Effects
	if err := s.cr.ReleaseInto(&eff, p.txn); err != nil {
		if errors.Is(err, core.ErrUnknownTxn) {
			// Crashed and already recovered: the restart redid the
			// commit from the prepared record and acked it.
			e.tracef("release T%d site=%d already redone", p.txn, sid)
		} else {
			panic(fmt.Sprintf("distsim: release T%d at site %d: %v", p.txn, sid, err))
		}
	} else {
		delete(s.prepTime, p.txn)
		s.cr.Forget(p.txn)
		e.ack(p.txn, sid)
		e.tracef("release T%d site=%d", p.txn, sid)
		e.processEffects(s, &eff)
	}
	at := e.sendFromSite(s, e.cfg.SiteTime+e.lat())
	e.tl.Schedule(at, ev{kind: evRelReply, p: p, txn: p.txn, site: sid})
}

// relReply advances the release fan-out; after the last ack the real
// commit has landed everywhere that is up. Under the eager policy's
// batched round every release is already in flight and relK just
// counts acks.
func (e *Engine) relReply(p *sproc) {
	p.relK++
	if p.relK < len(p.visited) {
		if e.policy == nil || !e.policy.EagerSubtree() {
			e.sendRelease(p)
		}
		return
	}
	e.realCommit(p)
}

// realCommit finishes a logical transaction: its promise was honoured
// at every (live) site, conservation counts its steps, and its mirror
// node leaves the union graph — possibly releasing dependants.
func (e *Engine) realCommit(p *sproc) {
	id := p.txn
	e.realCommits++
	if !e.draining {
		e.respReal.Add(e.tl.Now() - p.submitted)
		e.phRelease.Add(e.tl.Now() - p.decideTime)
	}
	for _, st := range p.steps {
		e.committedSteps[st.Object]++
	}
	e.tracef("committed T%d", id)
	if !p.freed {
		e.freeTerminal(p)
	}
	delete(e.procs, id)
	p.txn = 0
	e.finalize(id)
	if !e.inWindow && e.realCommits >= e.cfg.Warmup {
		e.openWindow()
	}
}

// freeTerminal completes the transaction from its terminal's
// perspective (§4.3: pseudo-commit is completion) and schedules the
// terminal's next submission after a think time.
func (e *Engine) freeTerminal(p *sproc) {
	p.freed = true
	e.pseudoCompl++
	if !e.draining {
		e.respPseudo.Add(e.tl.Now() - p.submitted)
	}
	if p.terminal >= 0 && !e.draining {
		e.tl.Schedule(e.think(), ev{kind: evSubmit, terminal: p.terminal})
	}
}

// ack confirms one participant's durable copy of a logged commit; the
// last ack truncates the decision.
func (e *Engine) ack(id core.TxnID, sid int) {
	pending := e.relAcks[id]
	if pending == nil {
		return
	}
	delete(pending, sid)
	if len(pending) == 0 {
		delete(e.relAcks, id)
		if err := e.flog.Truncate(id); err == nil {
			e.tracef("truncate T%d", id)
		}
	}
}

// stepFired counts a protocol-step boundary and fires any crash the
// schedule placed on it. site -1 (a coordinator-level step) defaults
// the victim to the transaction's first participant.
func (e *Engine) stepFired(step dist.Step, p *sproc, site int) {
	e.stepCount[step]++
	e.tracef("step %s T%d site=%d n=%d", step, p.txn, site, e.stepCount[step])
	if e.draining {
		// The crash schedule covers the measured run only; the drain
		// phase is simulated time the unbounded run never had.
		return
	}
	for i := range e.cfg.Crashes {
		cp := &e.cfg.Crashes[i]
		if e.crashFired[i] || cp.Step != step || e.stepCount[step] != cp.Occurrence {
			continue
		}
		e.crashFired[i] = true
		victim := cp.Site
		if victim < 0 {
			victim = site
			if victim < 0 {
				victim = p.visited[0]
			}
		}
		e.crash(victim, cp.RestartAfter)
	}
}

// crash fails a site at the current virtual instant: volatile state is
// dropped (the real fault.Crashable.Crash), its union-graph
// contribution is purged, and every live transaction that touched it
// is unwound — active, blocked and mid-conversation attempts abort
// (and retry); unlogged holds are revoked at the surviving sites and
// their logical transactions re-run detached; releasing transactions
// are past their commit point and proceed, skipping the dead site.
func (e *Engine) crash(sid int, restartAfter float64) {
	s := e.sites[sid]
	if s.down() {
		return
	}
	if err := s.cr.Crash(); err != nil {
		panic(fmt.Sprintf("distsim: crash site %d: %v", sid, err))
	}
	e.crashes++
	e.tracef("crash site=%d", sid)
	e.mirror.DropSite(sid)
	clear(s.parked)
	ids := make([]core.TxnID, 0, len(e.procs))
	for id, p := range e.procs {
		if p.visitedHas(sid) {
			ids = append(ids, id)
		}
	}
	slices.Sort(ids)
	for _, id := range ids {
		p := e.procs[id]
		if p == nil || p.txn != id {
			continue // an earlier iteration's cascade already handled it
		}
		p.doomed = true
		switch p.state {
		case spReleasing:
			// Past the commit point: the logged decision lands
			// everywhere, crash or not.
		case spHeld:
			e.revokeHeld(p, sid)
		default: // spActive, spBlocked, spHolding
			e.abortAttempt(p, core.ReasonSiteFailed, -1)
		}
	}
	if restartAfter > 0 {
		e.tl.Schedule(e.tl.Now()+restartAfter, ev{kind: evRestart, site: sid})
	}
}

// revokeHeld unwinds an unlogged held pseudo-commit after a crash:
// the hold is revoked at every surviving site (presumed abort's
// coordinator half), and the logical transaction re-runs detached —
// its terminal already moved on at pseudo-commit time.
func (e *Engine) revokeHeld(p *sproc, crashed int) {
	id := p.txn
	e.heldSet--
	e.heldAborts++
	for _, sid := range p.visited {
		if sid == crashed {
			continue
		}
		s := e.sites[sid]
		if s.down() {
			continue
		}
		var eff core.Effects
		if err := s.cr.RevokeInto(&eff, id, core.ReasonSiteFailed); err == nil {
			delete(s.prepTime, id)
			s.cr.Forget(id)
			e.processEffects(s, &eff)
		}
	}
	e.tracef("revoke T%d (site %d failed)", id, crashed)
	delete(e.procs, id)
	p.txn = 0
	p.state = spWaitRetry
	p.attempts++
	e.finalize(id)
	e.tl.Schedule(e.tl.Now()+e.backoff(p.attempts), ev{kind: evResubmit, p: p})
}

// restartSite recovers a crashed site: the real presumed-abort
// recovery runs (redo logged commits, discard the rest), redone
// transactions ack their release, and in-doubt windows close.
func (e *Engine) restartSite(s *simSite) {
	rep, err := s.cr.Restart()
	if err != nil {
		panic(fmt.Sprintf("distsim: restart site %d: %v", s.idx, err))
	}
	e.restarts++
	now := e.tl.Now()
	for _, id := range rep.Redone {
		if t0, ok := s.prepTime[id]; ok {
			if !e.draining {
				e.inDoubt.Add(now - t0)
			}
			delete(s.prepTime, id)
		}
		e.ack(id, s.idx)
	}
	for _, id := range rep.PresumedAborted {
		if t0, ok := s.prepTime[id]; ok {
			if !e.draining {
				e.inDoubt.Add(now - t0)
			}
			delete(s.prepTime, id)
		}
	}
	e.redone += len(rep.Redone)
	e.presumed += len(rep.PresumedAborted)
	e.tracef("restart site=%d redone=%v presumed=%v", s.idx, rep.Redone, rep.PresumedAborted)
}
