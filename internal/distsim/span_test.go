package distsim

import (
	"reflect"
	"testing"

	"repro/internal/telemetry"
)

// spanConvoy is Convoy(42) with the span plane armed: a ring big
// enough to keep every span of the run and a small exemplar store.
func spanConvoy() Config {
	cfg := Convoy(42)
	cfg.Spans = 1 << 15
	cfg.SpanExemplars = 8
	return cfg
}

// TestConvoySpans42 is the golden causal trace: arming the span plane
// must leave the seed-42 convoy bit-identical (same trace hash, same
// headline numbers), and the convoy's slowest retained trace — the
// longest chain the exemplar store pinned — must reconstruct the same
// causal timeline on every run: begin, twelve executed requests across
// four sites, four forced holds, one decision after a ten-second held
// wait, four releases.
func TestConvoySpans42(t *testing.T) {
	const (
		baseHash    = uint64(0x71872824acbf006c)
		spanCount   = 19408
		goldenTrace = uint64(0x9024eb3f1aad53bd)
		goldenTxn   = uint64(1461)
		goldenLat   = int64(21050529208) // ns, virtual: submit → real commit
		goldenHeld  = int64(10061738316) // ns, virtual: the decide span's held wait
	)
	res := run(t, spanConvoy())
	if res.TraceHash != baseHash {
		t.Fatalf("span plane perturbed the event trace: hash = %016x, want %016x",
			res.TraceHash, baseHash)
	}
	if res.RealCommits != 400 || res.PseudoCompletions != 604 || res.Held != 684 {
		t.Fatalf("span plane perturbed the run: real=%d pseudo=%d held=%d, want 400/604/684",
			res.RealCommits, res.PseudoCompletions, res.Held)
	}
	if len(res.Spans) != spanCount {
		t.Fatalf("retained spans = %d, want %d", len(res.Spans), spanCount)
	}
	if len(res.SpanExemplars) != 8 {
		t.Fatalf("exemplars = %d, want 8", len(res.SpanExemplars))
	}

	// The slowest exemplar is the convoy's longest chain.
	top := res.SpanExemplars[0]
	for _, ex := range res.SpanExemplars[1:] {
		if ex.Latency > top.Latency {
			top = ex
		}
	}
	if top.Trace != goldenTrace || top.Txn != goldenTxn || top.Latency != goldenLat {
		t.Fatalf("slowest trace = %016x txn=%d latency=%d, want %016x txn=%d latency=%d",
			top.Trace, top.Txn, top.Latency, goldenTrace, goldenTxn, goldenLat)
	}
	wantKinds := []telemetry.SpanKind{
		telemetry.SpanBegin,
		telemetry.SpanRequest, telemetry.SpanRequest, telemetry.SpanRequest,
		telemetry.SpanRequest, telemetry.SpanRequest, telemetry.SpanRequest,
		telemetry.SpanRequest, telemetry.SpanRequest, telemetry.SpanRequest,
		telemetry.SpanRequest, telemetry.SpanRequest, telemetry.SpanRequest,
		telemetry.SpanHold, telemetry.SpanHold, telemetry.SpanHold, telemetry.SpanHold,
		telemetry.SpanDecide,
		telemetry.SpanRelease, telemetry.SpanRelease, telemetry.SpanRelease, telemetry.SpanRelease,
	}
	if len(top.Spans) != len(wantKinds) {
		t.Fatalf("golden chain has %d spans, want %d", len(top.Spans), len(wantKinds))
	}
	for i, s := range top.Spans {
		if s.Kind != wantKinds[i] {
			t.Errorf("golden chain span %d = %s, want %s", i, s.Kind, wantKinds[i])
		}
		if i > 0 && s.Wall < top.Spans[i-1].Wall {
			t.Errorf("golden chain span %d wall %d precedes span %d wall %d",
				i, s.Wall, i-1, top.Spans[i-1].Wall)
		}
	}
	if d := top.Spans[17]; d.Kind != telemetry.SpanDecide || d.Dur != goldenHeld {
		t.Errorf("decide span dur = %d, want %d (the held wait)", d.Dur, goldenHeld)
	}
}

// TestConvoySpansDeterministic: two same-seed runs yield bit-identical
// span rings and exemplar stores — the whole point of clocking spans
// off the virtual timeline and deriving contexts purely from
// (seed, txn).
func TestConvoySpansDeterministic(t *testing.T) {
	a := run(t, spanConvoy())
	b := run(t, spanConvoy())
	if !reflect.DeepEqual(a.Spans, b.Spans) {
		t.Fatal("same-seed runs disagree on the span ring")
	}
	if !reflect.DeepEqual(a.SpanExemplars, b.SpanExemplars) {
		t.Fatal("same-seed runs disagree on the exemplar store")
	}
}

// TestSpansOffByDefault: the default path allocates no span plane and
// the Result carries none.
func TestSpansOffByDefault(t *testing.T) {
	res := run(t, small(7))
	if res.Spans != nil || res.SpanExemplars != nil {
		t.Fatal("span plane armed without Config.Spans")
	}
}
