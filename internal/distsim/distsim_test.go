package distsim

import (
	"testing"

	"repro/internal/adt"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/workload"
)

// run executes a config and fails the test on error.
func run(t *testing.T, cfg Config) Result {
	t.Helper()
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// small returns a quick mixed config with real cross-site traffic.
func small(seed int64) Config {
	cfg := Default(workload.Sharded{
		Inner:     workload.Pushes{DBSize: 32},
		Sites:     4,
		CrossProb: 0.3,
	}, 4, 8, seed)
	cfg.Completions = 300
	cfg.Warmup = 30
	cfg.ThinkTime = 0.02
	return cfg
}

// TestRunCompletes: the engine reaches its completion target and the
// headline numbers are sane.
func TestRunCompletes(t *testing.T) {
	res := run(t, small(1))
	if res.RealCommits != 300 {
		t.Fatalf("windowed real commits = %d, want 300", res.RealCommits)
	}
	if res.SimTime <= 0 {
		t.Fatalf("SimTime = %v", res.SimTime)
	}
	if res.Held == 0 {
		t.Fatal("cross-site pushes produced no held conversations")
	}
	if res.Stats.Commits == 0 {
		t.Fatal("site schedulers recorded no commits")
	}
}

// TestDeterminism: same seed, same scenario — bit-identical trace hash
// and identical measurements, twice over; a different seed diverges.
func TestDeterminism(t *testing.T) {
	a := run(t, small(7))
	b := run(t, small(7))
	if a.TraceHash != b.TraceHash || a.TraceLen != b.TraceLen {
		t.Fatalf("same seed, different traces: %016x/%d vs %016x/%d",
			a.TraceHash, a.TraceLen, b.TraceHash, b.TraceLen)
	}
	if a.String() != b.String() {
		t.Fatalf("same seed, different results:\n%s\n%s", a, b)
	}
	if a.ConvoyDepth.String() != b.ConvoyDepth.String() {
		t.Fatalf("same seed, different convoy histograms: %s vs %s",
			a.ConvoyDepth.String(), b.ConvoyDepth.String())
	}
	c := run(t, small(8))
	if c.TraceHash == a.TraceHash {
		t.Fatal("different seeds produced identical traces — the seed is not reaching the run")
	}
}

// TestConservation: on the all-push workload, after every site has
// recovered, each object's committed stack depth equals exactly the
// number of push steps of logical transactions whose commit promise
// was honoured — crashes included.
func TestConservation(t *testing.T) {
	for _, crashed := range []bool{false, true} {
		cfg := small(3)
		if crashed {
			cfg.Crashes = []CrashPoint{
				{Step: dist.AfterPrepareForce, Occurrence: 3, Site: -1, RestartAfter: 0.3},
				{Step: dist.AfterDecisionBeforeRelease, Occurrence: 9, Site: -1, RestartAfter: 0.3},
				{Step: dist.BeforeDecisionForce, Occurrence: 21, Site: -1, RestartAfter: 0.3},
				{Step: dist.DuringReleaseCascade, Occurrence: 30, Site: -1, RestartAfter: 0.3},
			}
		}
		eng, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		if crashed && res.Crashes == 0 {
			t.Fatal("crash schedule never fired")
		}
		for obj := core.ObjectID(1); obj <= 32; obj++ {
			var depth uint64
			st, err := eng.Site(eng.route(obj)).CommittedState(obj)
			if err == nil {
				depth = uint64(st.(*adt.StackState).Len())
			}
			if want := res.CommittedSteps[obj]; depth != want {
				t.Errorf("crashed=%v obj %d: committed depth %d, want %d (conservation violated)",
					crashed, obj, depth, want)
			}
		}
	}
}

// TestCrashAtAfterDecisionBeforeRelease: the crash lands after the
// commit point, so recovery must redo at least the victim's prepared
// record — deterministically, on every run of the scenario.
func TestCrashAtAfterDecisionBeforeRelease(t *testing.T) {
	res := run(t, CrashRedo(11))
	if res.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", res.Crashes)
	}
	if res.Redone == 0 {
		t.Fatalf("crash at AfterDecisionBeforeRelease redid nothing (presumed=%d)", res.PresumedAborted)
	}
	// Determinism of the scenario itself.
	again := run(t, CrashRedo(11))
	if again.TraceHash != res.TraceHash {
		t.Fatalf("redo scenario not deterministic: %016x vs %016x", res.TraceHash, again.TraceHash)
	}
}

// TestCrashAtBeforeDecisionForce: one boundary earlier the decision is
// never logged, so the victim's prepared record must be presumed
// aborted — and nothing may be redone for that conversation.
func TestCrashAtBeforeDecisionForce(t *testing.T) {
	res := run(t, CrashPresume(11))
	if res.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", res.Crashes)
	}
	if res.PresumedAborted == 0 {
		t.Fatalf("crash at BeforeDecisionForce presumed nothing aborted (redone=%d)", res.Redone)
	}
	if res.HeldAborts == 0 && res.Aborts == 0 {
		t.Fatal("the doomed conversation produced no abort")
	}
}

// TestLogBounded: release-ack truncation keeps the decision log's peak
// at the in-flight hold population, not the commit count, and drains
// it once the run quiesces.
func TestLogBounded(t *testing.T) {
	cfg := small(5)
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	total := res.RealCommits + cfg.Warmup
	if res.LogHighWater >= total/2 {
		t.Fatalf("log high water %d vs %d commits — truncation is not keeping up", res.LogHighWater, total)
	}
}
