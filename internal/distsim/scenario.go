package distsim

import (
	"repro/internal/dist"
	"repro/internal/workload"
)

// Convoy is the checked-in hold-convoy collapse scenario: an
// all-recoverable workload (every operation a stack push — recoverable
// with, but not commuting past, other pushes) with 40% cross-site
// steps, the regime where the wall-clock harness collapses to the
// coordinator's release-cascade rate (~160 txn/s on the 1-core dev
// container, ROADMAP). Held commits chain: every new transaction
// acquires commit dependencies on held ones and holds too, so real
// commits drain only as fast as release conversations cascade, while
// terminals — freed at pseudo-commit — keep piling new holds on. The
// simulator reproduces the collapse deterministically and measures
// what the wall clock cannot: the convoy-depth histogram and the
// pseudo/real throughput gap. This is the fixed baseline a future
// bounded-hold policy must beat.
func Convoy(seed int64) Config {
	cfg := Default(workload.Sharded{
		Inner:     workload.Pushes{DBSize: 128},
		Sites:     8,
		CrossProb: 0.4,
	}, 8, 32, seed)
	cfg.ThinkTime = 0.02  // eager terminals: holds pile up
	cfg.Completions = 400 // the collapse signature is visible early
	cfg.Warmup = 50
	return cfg
}

// ConvoyPolicy is the Convoy scenario with a bounded-hold policy
// installed — same seed, same workload, same timing; the only change
// is the coordinator's answer when a conversation would be held. The
// checked-in TestConvoyPolicy42 pins each policy's win over the
// unbounded baseline.
func ConvoyPolicy(seed int64, p dist.HoldPolicy) Config {
	cfg := Convoy(seed)
	cfg.Policy = p
	return cfg
}

// CrashRedo is the golden redo scenario: a small 2-site cluster whose
// first conversation to pass AfterDecisionBeforeRelease crashes its
// first participant — after the commit point, so the release skips the
// dead site and restart recovery must redo the logged commit from the
// prepared record.
func CrashRedo(seed int64) Config {
	cfg := smallCrashBase(seed)
	cfg.Crashes = []CrashPoint{{
		Step:         dist.AfterDecisionBeforeRelease,
		Occurrence:   1,
		Site:         -1,
		RestartAfter: 0.5,
	}}
	return cfg
}

// CrashPresume is the matching presumed-abort scenario: the crash
// lands one boundary earlier, at BeforeDecisionForce — every
// participant holds a forced prepare record but no decision is logged,
// so restart recovery must presume the record aborted and the logical
// transaction re-runs.
func CrashPresume(seed int64) Config {
	cfg := smallCrashBase(seed)
	cfg.Crashes = []CrashPoint{{
		Step:         dist.BeforeDecisionForce,
		Occurrence:   1,
		Site:         -1,
		RestartAfter: 0.5,
	}}
	return cfg
}

// smallCrashBase: 2 sites, 4 terminals, cross-site pushes — small
// enough for a golden trace, cross enough that hold conversations are
// guaranteed.
func smallCrashBase(seed int64) Config {
	cfg := Default(workload.Sharded{
		Inner:     workload.Pushes{DBSize: 16},
		Sites:     2,
		CrossProb: 0.5,
	}, 2, 4, seed)
	cfg.ThinkTime = 0.02
	cfg.Completions = 40
	cfg.Warmup = 0
	return cfg
}

// CoordCrash is the coordinator-failure scenario, mid-conversation
// flavour: the coordinator dies at a BeforeDecisionForce boundary —
// conversations have prepared holds but no logged decision. The
// replacement coordinator must presumed-abort the unlogged holds
// (CoordRevoked), abort the orphaned actives (CoordOrphans), and carry
// the cluster to the completion target with conservation intact.
func CoordCrash(seed int64) Config {
	cfg := smallCrashBase(seed)
	cfg.CoordCrashes = []CoordCrashPoint{{
		Step:         dist.BeforeDecisionForce,
		Occurrence:   4,
		RestartAfter: 0.5,
	}}
	return cfg
}

// CoordCrashRelease is the adoption flavour: the coordinator dies one
// boundary later, at AfterDecisionBeforeRelease — the decision is in
// the log but no release was sent. The replacement coordinator adopts
// the logged commit and finishes its releases (CoordAdopted); the
// paper's promise survives the coordinator itself failing. This is the
// same restart sequence the multi-process cluster runs when sccd's
// coordinator is kill -9'd (wire.StartCoordinator), pinned on the
// virtual clock.
func CoordCrashRelease(seed int64) Config {
	cfg := smallCrashBase(seed)
	cfg.CoordCrashes = []CoordCrashPoint{{
		Step:         dist.AfterDecisionBeforeRelease,
		Occurrence:   2,
		RestartAfter: 0.5,
	}}
	return cfg
}

// EagerReleaseCrash crashes a site in the middle of an eager release
// round (the batched all-participants fan-out the EagerRelease policy
// runs): the decision is logged and some releases land before the
// victim dies, so restart recovery must redo the skipped ones from
// their prepared records while the rest of the batch proceeds.
func EagerReleaseCrash(seed int64) Config {
	cfg := Default(workload.Sharded{
		Inner:     workload.Pushes{DBSize: 32},
		Sites:     4,
		CrossProb: 0.5,
	}, 4, 8, seed)
	cfg.ThinkTime = 0.02
	cfg.Completions = 80
	cfg.Warmup = 0
	cfg.Policy = dist.EagerRelease{}
	cfg.Crashes = []CrashPoint{{
		Step:         dist.DuringReleaseCascade,
		Occurrence:   6,
		Site:         -1,
		RestartAfter: 0.5,
	}}
	return cfg
}

// SweepPoint parameterises one cell of the message-latency ×
// cross-site-probability sweep at the given scale. Sites can be
// hundreds: every site is one real scheduler, so simulated scale costs
// memory, not goroutines.
func SweepPoint(sites, terminals int, latency, cross float64, seed int64) Config {
	cfg := Default(workload.Sharded{
		Inner:     workload.Pushes{DBSize: sites * 16},
		Sites:     sites,
		CrossProb: cross,
	}, sites, terminals, seed)
	cfg.MsgTime = latency
	cfg.ThinkTime = 0.02
	cfg.Completions = 600
	cfg.Warmup = 60
	return cfg
}
