package distsim

import (
	"regexp"
	"strconv"
	"testing"

	"repro/internal/adt"
	"repro/internal/core"
	"repro/internal/dist"
)

// canonicalPolicies returns the three checked-in bounded-hold policies
// at the parameter points the perf study pins: a depth bound well under
// the baseline's 237-deep convoy, the parameter-free eager subtree
// release, and an admission gate with 2:1 hysteresis.
func canonicalPolicies() []dist.HoldPolicy {
	return []dist.HoldPolicy{
		dist.DepthBound{Max: 16},
		dist.EagerRelease{},
		&dist.Admission{High: 32, Low: 16},
	}
}

// convoyShort is the Convoy regime at reduced length — long enough for
// every policy to fire, short enough for property tests to run it many
// times.
func convoyShort(seed int64, p dist.HoldPolicy) Config {
	cfg := ConvoyPolicy(seed, p)
	cfg.Completions = 150
	cfg.Warmup = 20
	return cfg
}

// TestConvoyPolicy42 is TestConvoyBaseline42's sibling: the same
// seed-42 convoy run with each bounded-hold policy installed, pinned
// bit-for-bit. The acceptance bars come from the baseline constants in
// TestConvoyBaseline42 — every policy must cut the max convoy depth to
// ≤120 (baseline 237), close at least half the 12.32 txn/s pseudo/real
// throughput gap, and pay for it with zero real-throughput regression.
// The exact pins (trace hash, depth, counters) catch any accidental
// behaviour change; an intentional model change must update them in
// the same commit that explains it.
func TestConvoyPolicy42(t *testing.T) {
	const (
		baseDepth  = 237
		baseRealTP = 24.1519           // baseline real commits/s at seed 42
		baseGap    = 36.4693 - 24.1519 // baseline pseudo-real gap, txn/s
		baseDrain  = 11.747            // baseline time-to-drain, virtual s
		baseP99    = 11.331            // baseline held-wait p99, virtual s
	)
	cases := []struct {
		policy dist.HoldPolicy
		hash   uint64
		depth  int // max convoy depth
		real   int
		pseudo int
		shed   int // TailAborts + AdmissionRejects
		eager  int // EagerReleased
	}{
		{dist.DepthBound{Max: 16}, 0x1194222b01bdcb30, 54, 400, 414, 169, 0},
		{dist.EagerRelease{}, 0xcfc02d3960e9bf51, 12, 400, 397, 0, 244},
		{&dist.Admission{High: 32, Low: 16}, 0x2b362cfb09f8476a, 32, 400, 406, 195, 0},
	}
	for _, tc := range cases {
		t.Run(tc.policy.Name(), func(t *testing.T) {
			res := run(t, ConvoyPolicy(42, tc.policy))
			if res.TraceHash != tc.hash {
				t.Errorf("trace hash = %016x, want %016x (policy run no longer bit-identical to the checked-in pin)",
					res.TraceHash, tc.hash)
			}
			if got := res.ConvoyDepth.Max(); got != tc.depth {
				t.Errorf("max convoy depth = %d, want %d", got, tc.depth)
			}
			if res.RealCommits != tc.real || res.PseudoCompletions != tc.pseudo {
				t.Errorf("commits = %d real / %d pseudo, want %d / %d",
					res.RealCommits, res.PseudoCompletions, tc.real, tc.pseudo)
			}
			if shed := res.TailAborts + res.AdmissionRejects; shed != tc.shed {
				t.Errorf("shed holds = %d (%d tail + %d admission), want %d",
					shed, res.TailAborts, res.AdmissionRejects, tc.shed)
			}
			if res.EagerReleased != tc.eager {
				t.Errorf("eager releases = %d, want %d", res.EagerReleased, tc.eager)
			}
			if res.Policy != tc.policy.Name() {
				t.Errorf("result policy = %q, want %q", res.Policy, tc.policy.Name())
			}
			// The three acceptance axes against the unbounded baseline.
			if got := res.ConvoyDepth.Max(); got > 120 {
				t.Errorf("max convoy depth = %d, want <= 120 (baseline %d)", got, baseDepth)
			}
			if gap := res.PseudoThroughput() - res.RealThroughput(); gap > baseGap/2 {
				t.Errorf("pseudo-real gap = %.4f txn/s, want <= %.4f (half of baseline %.4f)",
					gap, baseGap/2, baseGap)
			}
			if rt := res.RealThroughput(); rt < baseRealTP {
				t.Errorf("real throughput = %.4f txn/s, below the %.4f baseline — the policy made it worse",
					rt, baseRealTP)
			}
			// The promise-latency metrics must improve too: bounding the
			// convoy is pointless if held commits wait just as long.
			if res.HeldWaitP99 >= baseP99/2 {
				t.Errorf("held-wait p99 = %.4f, want < %.4f (half of baseline %.4f)",
					res.HeldWaitP99, baseP99/2, baseP99)
			}
			if res.TimeToDrain >= baseDrain/2 {
				t.Errorf("time-to-drain = %.4f, want < %.4f (half of baseline %.4f)",
					res.TimeToDrain, baseDrain/2, baseDrain)
			}
		})
	}
}

// TestPolicyDeterminism: a policy run is as deterministic as a plain
// one — same seed and same policy hash bit-identically, and each
// policy's trace differs from the baseline's and from the other
// policies' (the policy demonstrably changed the event sequence).
func TestPolicyDeterminism(t *testing.T) {
	base := run(t, convoyShort(9, nil))
	hashes := map[uint64]string{base.TraceHash: "baseline"}
	for _, p := range canonicalPolicies() {
		a := run(t, convoyShort(9, p))
		b := run(t, convoyShort(9, p))
		if a.TraceHash != b.TraceHash || a.TraceLen != b.TraceLen {
			t.Errorf("%s: same seed, different traces: %016x/%d vs %016x/%d",
				p.Name(), a.TraceHash, a.TraceLen, b.TraceHash, b.TraceLen)
		}
		if a.String() != b.String() {
			t.Errorf("%s: same seed, different results:\n%s\n%s", p.Name(), a, b)
		}
		if prev, ok := hashes[a.TraceHash]; ok {
			t.Errorf("%s: trace hash %016x collides with %s — the policy changed nothing",
				p.Name(), a.TraceHash, prev)
		}
		hashes[a.TraceHash] = p.Name()
	}
}

// TestPolicyConservation: every policy preserves exact per-object
// conservation — after the run (crash schedule included), each
// object's committed stack depth equals the push count of logical
// transactions whose commit promise was honoured. Shed holds are
// revoked before any promise is honoured, so they must not leave a
// single committed push behind.
func TestPolicyConservation(t *testing.T) {
	for _, p := range canonicalPolicies() {
		for _, crashed := range []bool{false, true} {
			cfg := convoyShort(3, p)
			if crashed {
				cfg.Crashes = []CrashPoint{
					{Step: dist.AfterPrepareForce, Occurrence: 3, Site: -1, RestartAfter: 0.3},
					{Step: dist.AfterDecisionBeforeRelease, Occurrence: 9, Site: -1, RestartAfter: 0.3},
					{Step: dist.BeforeDecisionForce, Occurrence: 21, Site: -1, RestartAfter: 0.3},
					{Step: dist.DuringReleaseCascade, Occurrence: 30, Site: -1, RestartAfter: 0.3},
				}
			}
			eng, err := NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Run()
			if err != nil {
				t.Fatalf("%s crashed=%v: %v", p.Name(), crashed, err)
			}
			if crashed && res.Crashes == 0 {
				t.Fatalf("%s: crash schedule never fired", p.Name())
			}
			if res.TailAborts+res.AdmissionRejects+res.EagerReleased == 0 {
				t.Fatalf("%s crashed=%v: policy never fired — not exercising the shed/release path", p.Name(), crashed)
			}
			for obj := core.ObjectID(1); obj <= 128; obj++ {
				var depth uint64
				st, err := eng.Site(eng.route(obj)).CommittedState(obj)
				if err == nil {
					depth = uint64(st.(*adt.StackState).Len())
				}
				if want := res.CommittedSteps[obj]; depth != want {
					t.Errorf("%s crashed=%v obj %d: committed depth %d, want %d (conservation violated)",
						p.Name(), crashed, obj, depth, want)
				}
			}
		}
	}
}

// txnEventRE matches every per-transaction terminal event in the
// trace: once "committed T<id>" appears, no abort-flavoured event may
// mention the same id again — a policy must never revoke a transaction
// whose real commit already landed.
var txnEventRE = regexp.MustCompile(`(committed|retry-abort|abort|shed|revoke|cycle) T(\d+)`)

// TestPolicyNeverAbortsCommitted scans each policy's full event trace
// (crash schedule included, so crash-revokes are in play too): a
// really-committed transaction id must never be shed, revoked or
// aborted afterwards. Recoverability lets a policy revoke *held*
// pseudo-commits without cascading; touching a real commit would be a
// durability violation.
func TestPolicyNeverAbortsCommitted(t *testing.T) {
	for _, p := range canonicalPolicies() {
		cfg := convoyShort(4, p)
		cfg.RecordTrace = true
		cfg.Crashes = []CrashPoint{
			{Step: dist.AfterPrepareForce, Occurrence: 5, Site: -1, RestartAfter: 0.3},
			{Step: dist.DuringReleaseCascade, Occurrence: 12, Site: -1, RestartAfter: 0.3},
		}
		res := run(t, cfg)
		if len(res.Trace) == 0 {
			t.Fatalf("%s: no trace recorded", p.Name())
		}
		committed := make(map[int]bool)
		sheds := 0
		for i, line := range res.Trace {
			m := txnEventRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			id, err := strconv.Atoi(m[2])
			if err != nil {
				t.Fatalf("%s: bad txn id in trace line %q", p.Name(), line)
			}
			switch m[1] {
			case "committed":
				committed[id] = true
			case "shed":
				sheds++
				fallthrough
			default:
				if committed[id] {
					t.Fatalf("%s: trace line %d %q aborts T%d after its real commit",
						p.Name(), i+1, line, id)
				}
			}
		}
		if len(committed) == 0 {
			t.Fatalf("%s: trace has no real commits", p.Name())
		}
		if _, isDepth := p.(dist.DepthBound); isDepth && sheds == 0 {
			t.Fatalf("%s: depth bound shed nothing — scenario not adversarial enough", p.Name())
		}
	}
}
