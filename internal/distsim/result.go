package distsim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/telemetry"
)

// Result is what one deterministic multi-site run measured. The
// windowed counters (SimTime, RealCommits, PseudoCompletions, Aborts,
// HeldAborts) cover the measurement window (after Warmup real
// commits); the structural counters (Held, Crashes, Redone,
// PresumedAborted) and the distributions cover the whole run — a crash
// scenario's recovery counts must not disappear into the warm-up.
type Result struct {
	Sites int

	// SimTime is the virtual seconds the measurement window lasted.
	SimTime float64
	// RealCommits counts logical transactions whose real commit landed
	// (at every visited site) inside the window — the conservation
	// currency, and the convoy study's honest throughput.
	RealCommits int
	// PseudoCompletions counts terminal-level completions inside the
	// window: a transaction is complete for its terminal at
	// pseudo-commit (§4.3), which is what makes convoys possible —
	// terminals submit new work while holds pile up.
	PseudoCompletions int
	// Aborts counts aborted attempts (each resubmitted).
	Aborts int
	// HeldAborts counts held pseudo-commits revoked by a site crash
	// before their commit point (each logical transaction re-run).
	HeldAborts int

	// Held counts commit conversations that ended held (whole run).
	Held int
	// Crashes / Restarts count injected failures (whole run; restarts
	// include the end-of-run recovery of still-down sites).
	Crashes, Restarts int
	// Redone / PresumedAborted count prepared records resolved by
	// restart recovery (whole run).
	Redone, PresumedAborted int

	// Coordinator-failure counters (whole run; all zero unless
	// Config.CoordCrashes armed the model). CoordAdopted counts logged
	// commit decisions the replacement coordinator adopted at restart;
	// CoordOrphans counts attempts stranded mid-flight by a coordinator
	// crash (each aborted and retried); CoordRevoked counts unlogged
	// holds presumed-aborted because the coordinator that held them
	// died.
	CoordCrashes, CoordRestarts int
	CoordAdopted                int
	CoordOrphans, CoordRevoked  int

	// ConvoyDepth samples the held-set size at each hold — the joining
	// transaction included, so the first hold of an idle cluster
	// records depth 1. Its max is the convoy depth the wall-clock
	// harness can only guess at.
	ConvoyDepth metrics.Hist
	// InDoubt measures prepare-to-resolution windows of prepared
	// records that lived through a crash (resolved by restart
	// recovery).
	InDoubt metrics.Window
	// Per-phase latency breakdown of the transaction lifecycle:
	// execution (first submit-side issue to conversation start), the
	// hold conversation (start to decision-or-held), the held wait
	// (held to decision), and the release fan-out (decision to real
	// commit everywhere).
	PhaseExec, PhaseHold, PhaseHeldWait, PhaseRelease metrics.Window
	// RespPseudo / RespReal are terminal-perceived and
	// promise-honoured response times (submission to pseudo-commit /
	// to real commit), whole run.
	RespPseudo, RespReal metrics.Window

	// LogHighWater is the decision log's peak live size — with
	// release-ack truncation it tracks in-flight holds, not history.
	LogHighWater int
	// CommittedSteps counts, per object, the operations of logical
	// transactions whose real commit landed — the expected side of a
	// conservation check against the final committed states.
	CommittedSteps map[core.ObjectID]uint64

	// Policy names the hold policy the run used ("" = off, the
	// unbounded baseline).
	Policy string
	// TailAborts counts holds shed by a depth bound and
	// AdmissionRejects holds shed by a closed admission gate (whole
	// run; each shed is also counted in Aborts and retried).
	TailAborts, AdmissionRejects int
	// EagerRounds counts non-empty eager-release rounds and
	// EagerReleased the held transactions they released (whole run).
	EagerRounds, EagerReleased int
	// HeldWaitP99 is the 99th-percentile held→decision wait in virtual
	// seconds, over every hold of the run including those resolved in
	// the post-target drain (unlike PhaseHeldWait, which samples only
	// inside the run so it stays comparable with older results).
	HeldWaitP99 float64
	// TimeToDrain is the virtual time from the completion target (the
	// last arrival: terminals stop) to the empty held set — how long
	// the convoy's outstanding promises take to honour once load
	// stops.
	TimeToDrain float64

	// TraceHash is the 64-bit FNV-1a hash of every trace line — the
	// bit-identity fingerprint two same-seed runs must share.
	TraceHash uint64
	// TraceLen is the number of trace lines hashed.
	TraceLen int
	// Trace holds the lines themselves when Config.RecordTrace is set.
	Trace []string

	// Spans is the causal-span ring's final contents (nil unless
	// Config.Spans > 0), stamped from the virtual clock, and
	// SpanExemplars the pinned tail-latency traces. Same seed, same
	// config, bit-identical slices.
	Spans         []telemetry.Span
	SpanExemplars []telemetry.TraceExemplar

	// Stats sums every site's scheduler counters across incarnations.
	Stats core.Stats
}

// RealThroughput returns real commits per virtual second in the
// window.
func (r Result) RealThroughput() float64 {
	if r.SimTime <= 0 {
		return 0
	}
	return float64(r.RealCommits) / r.SimTime
}

// PseudoThroughput returns terminal completions per virtual second in
// the window.
func (r Result) PseudoThroughput() float64 {
	if r.SimTime <= 0 {
		return 0
	}
	return float64(r.PseudoCompletions) / r.SimTime
}

// String renders the headline numbers.
func (r Result) String() string {
	s := fmt.Sprintf(
		"sites=%d simtime=%.3f real=%d (%.1f/s) pseudo=%d (%.1f/s) aborts=%d heldaborts=%d held=%d crashes=%d redone=%d presumed=%d convoy[%s] heldp99=%.4f drain=%.3f logpeak=%d trace=%016x",
		r.Sites, r.SimTime, r.RealCommits, r.RealThroughput(),
		r.PseudoCompletions, r.PseudoThroughput(), r.Aborts, r.HeldAborts,
		r.Held, r.Crashes, r.Redone, r.PresumedAborted,
		r.ConvoyDepth.String(), r.HeldWaitP99, r.TimeToDrain,
		r.LogHighWater, r.TraceHash)
	if r.Policy != "" {
		s += fmt.Sprintf(" policy=%s shed=%d/%d eager=%d/%d",
			r.Policy, r.TailAborts, r.AdmissionRejects,
			r.EagerRounds, r.EagerReleased)
	}
	if r.CoordCrashes > 0 {
		s += fmt.Sprintf(" coordcrash=%d/%d adopted=%d orphans=%d revoked=%d",
			r.CoordCrashes, r.CoordRestarts, r.CoordAdopted,
			r.CoordOrphans, r.CoordRevoked)
	}
	return s
}
