package distsim

import (
	"fmt"
	"math/rand"
	"slices"
	"sort"

	"repro/internal/core"
	"repro/internal/depgraph"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// sprocState tracks where a logical transaction's current attempt is.
type sprocState uint8

const (
	spActive    sprocState = iota // issuing requests
	spBlocked                     // a request is parked at a site
	spHolding                     // commit conversation in flight (hold phase or direct commit)
	spHeld                        // pseudo-committed-and-held, waiting for the global dependency set
	spReleasing                   // decision logged, releases fanning out
	spWaitRetry                   // aborted, waiting out the restart backoff
)

// sproc is one logical transaction: it survives aborts (the attempt
// resubmits with a fresh txn id) and, for revoked holds, survives the
// revocation as a detached re-run.
type sproc struct {
	txn      core.TxnID // current attempt's id; 0 between attempts
	terminal int
	steps    []workload.Step
	idx      int
	visited  []int // ascending site ids where Begin has run
	anyEdges bool
	doomed   bool
	freed    bool // terminal released (pseudo completion counted)
	state    sprocState

	// direct marks an attempt on the edge-free single-site commit fast
	// path; adopted marks a conversation that outlived a coordinator
	// crash (its completion is driven by the replacement coordinator's
	// reconcile, not by reply counting).
	direct  bool
	adopted bool

	blockedSite  int
	attempts     int
	submitted    float64 // first submission (survives restarts)
	attemptStart float64
	commitStart  float64
	decideTime   float64 // decision time (or startCommit for the direct path)
	heldAt       float64

	holdK     int
	relK      int
	holdEdges [][]depgraph.Edge // per visited site, captured at hold time
}

// orphanRec remembers a transaction the crashed coordinator stranded:
// its site-side state (locks, queue entries, holds) survives until the
// replacement coordinator reconciles it away at restart.
type orphanRec struct {
	id      core.TxnID
	visited []int
}

func (p *sproc) visitedHas(sid int) bool {
	for _, v := range p.visited {
		if v == sid {
			return true
		}
	}
	return false
}

// simSite is one participant: the real crash-stop scheduler plus the
// model's per-site channel state.
type simSite struct {
	idx int
	cr  *fault.Crashable
	// toCoord/fromCoord hold the earliest next delivery time per
	// direction: channels are FIFO (a later send never overtakes an
	// earlier one), which is what keeps stale edge reports from
	// clobbering fresh ones at the mirror.
	toCoord, fromCoord float64
	// parked maps transactions blocked at this site.
	parked map[core.TxnID]*sproc
	// prepTime records when each prepared (in-doubt) record was forced
	// — durable bookkeeping, surviving crashes, for the in-doubt
	// window metric.
	prepTime map[core.TxnID]float64
}

func (s *simSite) down() bool { return s.cr.Down() }

// evKind discriminates simulator events.
type evKind uint8

const (
	evSubmit       evKind = iota // a terminal submits a new logical transaction
	evResubmit                   // an aborted/revoked logical transaction retries
	evReqArrive                  // an operation request reaches its home site
	evOpDone                     // an executed operation's reply reached the terminal
	evObserve                    // an edge report reaches the coordinator's mirror
	evCommitArrive               // a direct (edge-free single-site) commit reaches the site
	evCommitReply                // ... and its reply reaches the coordinator
	evHoldArrive                 // a commit-hold (prepare) reaches participant k
	evHoldReply                  // ... and its reply reaches the coordinator
	evRelArrive                  // a release reaches participant k
	evRelReply                   // ... and its ack reaches the coordinator
	evRestart                    // a crashed site restarts and recovers
	evCoordRestart               // the replacement coordinator starts and reconciles
)

// clientAckSim is the virtual release-ack member standing for "the
// terminal has learned this commit outcome" — the simulator's copy of
// dist's clientAck gate. Only armed when the coordinator-failure model
// is on (Config.CoordCrashes non-empty): it keeps a logged decision in
// the log until realCommit, so a coordinator crash between the last
// site ack and the terminal's reply still resolves toward commit.
const clientAckSim = -2

// ev is one scheduled event. txn stamps the attempt the event belongs
// to: if the proc has moved on (aborted and resubmitted) the event is
// stale and dropped — the message died with the attempt.
type ev struct {
	kind     evKind
	p        *sproc
	txn      core.TxnID
	site     int
	k        int
	terminal int
	edges    []depgraph.Edge // evObserve payload, captured at send time
}

// Engine runs one deterministic multi-site simulation.
type Engine struct {
	cfg   Config
	src   workload.Source
	rng   *rand.Rand
	tl    sim.Timeline[ev]
	sites []*simSite

	mirror  *depgraph.Mirror
	flog    fault.Log
	relAcks map[core.TxnID]map[int]struct{}

	procs   map[core.TxnID]*sproc
	nextTxn core.TxnID

	stepCount  [dist.NumSteps]int
	crashFired []bool

	// Coordinator-failure model (armed by a non-empty CoordCrashes
	// schedule; coordGate=false keeps the classic coordinator-never-
	// fails behavior bit-identical, baseline trace hashes included).
	coordGate       bool
	coordDown       bool
	coordRestartAt  float64
	coordCrashFired []bool
	orphans         []orphanRec

	coordCrashes, coordRestarts int
	coordAdopted                int
	coordOrphans, coordRevoked  int

	// policy is the engine's Fresh clone of cfg.Policy (nil = off).
	policy dist.HoldPolicy

	// Counters (whole run; the window is a delta).
	realCommits, pseudoCompl, aborts, heldAborts int
	held, crashes, restarts                      int
	redone, presumed                             int
	heldSet                                      int
	logHighWater                                 int
	tailAborts, admitRejects                     int
	eagerRounds, eagerReleased                   int

	inWindow                                       bool
	windowStart                                    float64
	baseReal, basePseudo, baseAborts, baseHeldAbrt int

	// draining marks the post-target drain phase: terminals stop
	// (submits/resubmits are dropped), tracing is suppressed (the hash
	// freezes at the completion target, keeping policy-off runs
	// bit-identical to the pre-drain baselines) and the windowed
	// metrics stop sampling; only the held set keeps draining, for the
	// TimeToDrain measurement. The snap* values freeze the measurement
	// window at the target.
	draining                                       bool
	timeToDrain                                    float64
	snapTime                                       float64
	snapReal, snapPseudo, snapAborts, snapHeldAbrt int
	snapHeld                                       int

	// heldWaits collects every held→decision wait (drain included) for
	// the p99; the gated phHeldWait window keeps its pre-drain meaning.
	heldWaits []float64

	convoy                                metrics.Hist
	inDoubt                               metrics.Window
	phExec, phHold, phHeldWait, phRelease metrics.Window
	respPseudo, respReal                  metrics.Window
	committedSteps                        map[core.ObjectID]uint64

	traceHash uint64
	traceLen  int
	trace     []string

	// Span plane (nil unless Config.Spans > 0): spans is clocked off
	// the virtual timeline, sampler derives each transaction's trace
	// context purely from (Seed, txn id) — same seed, bit-identical
	// causal traces.
	spans   *telemetry.SpanBuffer
	sampler *telemetry.Sampler
	// blockedAt remembers when a blocked request parked (virtual time)
	// so the grant span can carry the wait as its duration.
	blockedAt map[core.TxnID]float64
}

// NewEngine builds an engine for the configuration.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	flog := cfg.Log
	if flog == nil {
		flog = fault.NewMemLog()
	}
	e := &Engine{
		cfg:             cfg,
		src:             workload.Source{Gen: cfg.Workload, MinLen: cfg.MinLength, MaxLen: cfg.MaxLength},
		rng:             rand.New(rand.NewSource(cfg.Seed)),
		mirror:          depgraph.NewMirror(),
		flog:            flog,
		relAcks:         make(map[core.TxnID]map[int]struct{}),
		procs:           make(map[core.TxnID]*sproc),
		crashFired:      make([]bool, len(cfg.Crashes)),
		coordGate:       len(cfg.CoordCrashes) > 0,
		coordCrashFired: make([]bool, len(cfg.CoordCrashes)),
		committedSteps:  make(map[core.ObjectID]uint64),
		traceHash:       fnvOffset,
	}
	if cfg.Policy != nil {
		e.policy = cfg.Policy.Fresh()
	}
	if cfg.Spans > 0 {
		e.spans = telemetry.NewSpanBuffer(cfg.Spans, cfg.SpanExemplars)
		e.spans.SetClock(func() int64 { return int64(e.tl.Now() * 1e9) })
		e.sampler = telemetry.NewSampler(cfg.Seed, 1)
		e.blockedAt = make(map[core.TxnID]float64)
	}
	opts := core.Options{Predicate: cfg.Predicate, Recovery: core.RecoveryIntentions}
	factory := cfg.Workload.Factory()
	for i := 0; i < cfg.Sites; i++ {
		cr, err := fault.New(opts, flog)
		if err != nil {
			return nil, err
		}
		cr.SetFactory(factory)
		e.sites = append(e.sites, &simSite{
			idx:      i,
			cr:       cr,
			parked:   make(map[core.TxnID]*sproc),
			prepTime: make(map[core.TxnID]float64),
		})
	}
	return e, nil
}

// Site exposes one participant's crash-stop backend (tests and
// conservation checks; call after Run, when every site is up).
func (e *Engine) Site(i int) *fault.Crashable { return e.sites[i].cr }

// Spans exposes the causal-span ring (nil unless Config.Spans > 0).
func (e *Engine) Spans() *telemetry.SpanBuffer { return e.spans }

// route maps an object to its home site (dist.RouteByModulo's rule).
func (e *Engine) route(id core.ObjectID) int {
	return int(uint64(id) % uint64(e.cfg.Sites))
}

// lat draws one message latency.
func (e *Engine) lat() float64 {
	if e.cfg.MsgJitter == 0 {
		return e.cfg.MsgTime
	}
	return e.cfg.MsgTime * (1 + e.cfg.MsgJitter*(2*e.rng.Float64()-1))
}

// think draws a terminal think time.
func (e *Engine) think() float64 {
	if e.cfg.ThinkTime == 0 {
		return e.tl.Now()
	}
	return e.tl.Now() + e.rng.ExpFloat64()*e.cfg.ThinkTime
}

// backoff draws the restart delay for the n-th attempt: doubling from
// RestartDelay, capped at 64x, with a uniform [0.5,1.5) jitter factor
// so deterministic re-collisions don't lockstep.
func (e *Engine) backoff(attempts int) float64 {
	shift := attempts - 1
	if shift > 6 {
		shift = 6
	}
	return e.cfg.RestartDelay * float64(uint(1)<<uint(shift)) * (0.5 + e.rng.Float64())
}

// sendToSite reserves a FIFO delivery slot on the coordinator→site
// channel and returns the arrival time.
func (e *Engine) sendToSite(sid int, delay float64) float64 {
	s := e.sites[sid]
	at := e.tl.Now() + delay
	if at < s.fromCoord {
		at = s.fromCoord
	}
	s.fromCoord = at
	return at
}

// sendFromSite is the site→coordinator direction.
func (e *Engine) sendFromSite(s *simSite, delay float64) float64 {
	at := e.tl.Now() + delay
	if at < s.toCoord {
		at = s.toCoord
	}
	s.toCoord = at
	return at
}

// Run simulates until Warmup+Completions logical transactions have
// really committed, freezes the measurement window there, keeps the
// clock running with terminals stopped until the held set empties (the
// time-to-drain measurement), then restarts any still-down site
// (resolving its in-doubt records) and returns the measurements.
func (e *Engine) Run() (Result, error) {
	target := e.cfg.Warmup + e.cfg.Completions
	if e.cfg.Warmup == 0 {
		e.openWindow()
	}
	for t := 0; t < e.cfg.Terminals; t++ {
		e.tl.Schedule(e.think(), ev{kind: evSubmit, terminal: t})
	}
	guard := e.cfg.maxEvents()
	for steps := 0; e.realCommits < target; steps++ {
		if steps >= guard {
			return Result{}, fmt.Errorf("distsim: event guard tripped after %d events (%d/%d real commits) — likely stall", steps, e.realCommits, target)
		}
		event, ok := e.tl.Next()
		if !ok {
			return Result{}, fmt.Errorf("distsim: event queue drained at %d/%d real commits", e.realCommits, target)
		}
		e.dispatch(event)
	}
	if err := e.drainHeld(guard); err != nil {
		return Result{}, err
	}
	// Bring every site back up so final committed states are fully
	// recovered (redo or presumed abort) before anyone inspects them.
	for _, s := range e.sites {
		if s.down() {
			e.restartSite(s)
		}
	}
	return e.result(), nil
}

// drainHeld is the post-target drain: the measurement window is frozen
// (snapshot counters, suppressed tracing and metric sampling — a
// policy-off run's hash and windowed numbers are bit-identical to a
// run without the drain), terminals stop submitting, and the clock
// runs until every held transaction has released or aborted. The
// elapsed virtual time is TimeToDrain: how long the convoy's promises
// take to honour once load stops — the second axis, besides depth, on
// which a bounded-hold policy beats the baseline.
func (e *Engine) drainHeld(guard int) error {
	e.snapTime = e.tl.Now() - e.windowStart
	e.snapReal = e.realCommits - e.baseReal
	e.snapPseudo = e.pseudoCompl - e.basePseudo
	e.snapAborts = e.aborts - e.baseAborts
	e.snapHeldAbrt = e.heldAborts - e.baseHeldAbrt
	e.snapHeld = e.held
	start := e.tl.Now()
	e.draining = true
	for steps := 0; e.heldSet > 0; steps++ {
		if steps >= guard {
			return fmt.Errorf("distsim: drain guard tripped with %d still held — stall", e.heldSet)
		}
		event, ok := e.tl.Next()
		if !ok {
			return fmt.Errorf("distsim: event queue drained with %d still held — stall", e.heldSet)
		}
		e.dispatch(event)
	}
	e.timeToDrain = e.tl.Now() - start
	e.draining = false
	return nil
}

// openWindow starts the measurement window.
func (e *Engine) openWindow() {
	e.inWindow = true
	e.windowStart = e.tl.Now()
	e.baseReal = e.realCommits
	e.basePseudo = e.pseudoCompl
	e.baseAborts = e.aborts
	e.baseHeldAbrt = e.heldAborts
}

// result assembles the Result. The windowed counters and Held were
// snapshot when the completion target was met (drainHeld), so the
// post-target drain cannot move them.
func (e *Engine) result() Result {
	var st core.Stats
	for _, s := range e.sites {
		st.Add(s.cr.StatsSnapshot())
	}
	r := Result{
		Sites:             e.cfg.Sites,
		SimTime:           e.snapTime,
		RealCommits:       e.snapReal,
		PseudoCompletions: e.snapPseudo,
		Aborts:            e.snapAborts,
		HeldAborts:        e.snapHeldAbrt,
		Held:              e.snapHeld,
		Crashes:           e.crashes,
		Restarts:          e.restarts,
		Redone:            e.redone,
		PresumedAborted:   e.presumed,
		ConvoyDepth:       e.convoy,
		InDoubt:           e.inDoubt,
		PhaseExec:         e.phExec,
		PhaseHold:         e.phHold,
		PhaseHeldWait:     e.phHeldWait,
		PhaseRelease:      e.phRelease,
		RespPseudo:        e.respPseudo,
		RespReal:          e.respReal,
		LogHighWater:      e.logHighWater,
		CommittedSteps:    e.committedSteps,
		TraceHash:         e.traceHash,
		TraceLen:          e.traceLen,
		Trace:             e.trace,
		Stats:             st,
		TailAborts:        e.tailAborts,
		AdmissionRejects:  e.admitRejects,
		EagerRounds:       e.eagerRounds,
		EagerReleased:     e.eagerReleased,
		CoordCrashes:      e.coordCrashes,
		CoordRestarts:     e.coordRestarts,
		CoordAdopted:      e.coordAdopted,
		CoordOrphans:      e.coordOrphans,
		CoordRevoked:      e.coordRevoked,
		HeldWaitP99:       metrics.Quantile(e.heldWaits, 0.99),
		TimeToDrain:       e.timeToDrain,
		Policy:            policyName(e.policy),
	}
	if e.spans != nil {
		r.Spans = e.spans.Snapshot()
		r.SpanExemplars = e.spans.Exemplars()
	}
	return r
}

// policyName renders the policy for Result ("" = off).
func policyName(p dist.HoldPolicy) string {
	if p == nil {
		return ""
	}
	return p.Name()
}

// stale reports whether the event's attempt has died (aborted and
// resubmitted, or completed) since the message was sent.
func stale(event ev) bool {
	return event.p == nil || event.p.txn != event.txn || event.txn == 0
}

// dispatch routes one event.
func (e *Engine) dispatch(event ev) {
	if e.coordDown {
		switch event.kind {
		case evCoordRestart:
			e.coordRestart()
			return
		case evOpDone, evObserve, evCommitReply, evHoldReply, evRelReply:
			// Site→coordinator messages die at the dead coordinator.
			// (Most belong to attempts orphaned at crash time anyway;
			// the commit and release replies of adopted conversations
			// are the load-bearing drops.)
			return
		case evSubmit, evResubmit:
			// Terminals are co-located with the coordinator: new work
			// waits for the replacement. A deferral, not an abort.
			if !e.draining {
				e.tl.Schedule(e.coordRestartAt+e.lat(), event)
			}
			return
		case evRestart:
			// Site recovery reconciles against the coordinator's
			// decision log; defer until the replacement is up.
			e.tl.Schedule(e.coordRestartAt+e.lat(), event)
			return
		}
		// Coordinator→site messages already in flight are delivered.
	}
	switch event.kind {
	case evSubmit:
		// Terminals stop at the completion target: the drain phase
		// measures how the existing convoy resolves, not new load.
		if !e.draining {
			e.submit(event.terminal)
		}
	case evResubmit:
		if !e.draining && event.p.state == spWaitRetry {
			e.startAttempt(event.p)
		}
	case evReqArrive:
		if !stale(event) {
			e.reqArrive(event.p, event.site)
		}
	case evOpDone:
		if !stale(event) && event.p.state == spActive {
			e.issue(event.p)
		}
	case evObserve:
		e.observeArrive(event)
	case evCommitArrive:
		if !stale(event) {
			e.commitArrive(event.p, event.site)
		}
	case evCommitReply:
		if !stale(event) && !event.p.adopted {
			e.realCommit(event.p)
		}
	case evHoldArrive:
		if !stale(event) {
			e.holdArrive(event.p, event.site)
		}
	case evHoldReply:
		if !stale(event) {
			e.holdReply(event.p, event.edges)
		}
	case evRelArrive:
		if !stale(event) {
			e.relArrive(event.p, event.site)
		}
	case evRelReply:
		if !stale(event) && !event.p.adopted {
			e.relReply(event.p)
		}
	case evRestart:
		s := e.sites[event.site]
		if s.down() {
			e.restartSite(s)
		}
	case evCoordRestart:
		// Already restarted (handled in the coordDown branch).
	}
}

// submit draws a fresh logical transaction for the terminal.
func (e *Engine) submit(terminal int) {
	p := &sproc{
		terminal:  terminal,
		steps:     e.src.Draw(e.rng),
		submitted: e.tl.Now(),
	}
	e.startAttempt(p)
}

// startAttempt begins one attempt of the logical transaction under a
// fresh txn id.
func (e *Engine) startAttempt(p *sproc) {
	e.nextTxn++
	p.txn = e.nextTxn
	p.idx = 0
	p.visited = p.visited[:0]
	p.anyEdges = false
	p.doomed = false
	p.direct, p.adopted = false, false
	p.state = spActive
	p.holdK, p.relK = 0, 0
	p.holdEdges = p.holdEdges[:0]
	p.attemptStart = e.tl.Now()
	e.procs[p.txn] = p
	e.tracef("submit T%d term=%d len=%d attempt=%d", p.txn, p.terminal, len(p.steps), p.attempts)
	e.span(telemetry.SpanBegin, p.txn, -1, int64(len(p.steps)), 0, 0)
	e.issue(p)
}

// issue sends the transaction's next operation to its home site, or
// starts the commit conversation when none remain.
func (e *Engine) issue(p *sproc) {
	if p.idx >= len(p.steps) {
		e.startCommit(p)
		return
	}
	sid := e.route(p.steps[p.idx].Object)
	at := e.sendToSite(sid, e.lat())
	e.tl.Schedule(at, ev{kind: evReqArrive, p: p, txn: p.txn, site: sid})
}

// reqArrive processes an operation request at its home site.
func (e *Engine) reqArrive(p *sproc, sid int) {
	s := e.sites[sid]
	if s.down() {
		e.tracef("req T%d site=%d -> site down", p.txn, sid)
		e.abortAttempt(p, core.ReasonSiteFailed, -1)
		return
	}
	step := p.steps[p.idx]
	if !p.visitedHas(sid) {
		if err := s.cr.Begin(p.txn); err != nil {
			panic(fmt.Sprintf("distsim: Begin T%d at site %d: %v", p.txn, sid, err))
		}
		p.visited = append(p.visited, sid)
		slices.Sort(p.visited)
	}
	var eff core.Effects
	dec, err := s.cr.RequestInto(&eff, p.txn, step.Object, step.Op)
	if err != nil {
		panic(fmt.Sprintf("distsim: Request T%d obj %d at site %d: %v", p.txn, step.Object, sid, err))
	}
	switch dec.Outcome {
	case core.Executed:
		p.idx++
		e.tracef("req T%d site=%d obj=%d op=%s -> executed", p.txn, sid, step.Object, step.Op.Name)
		e.span(telemetry.SpanRequest, p.txn, sid, int64(step.Object), 0, 0)
		e.afterExec(p, s)
	case core.Blocked:
		p.state = spBlocked
		p.blockedSite = sid
		s.parked[p.txn] = p
		e.tracef("req T%d site=%d obj=%d op=%s -> blocked", p.txn, sid, step.Object, step.Op.Name)
		if e.spans != nil {
			e.span(telemetry.SpanBlock, p.txn, sid, int64(step.Object), 0, 0)
			e.blockedAt[p.txn] = e.tl.Now()
		}
		e.scheduleObserve(p, s)
	case core.Aborted:
		e.tracef("req T%d site=%d obj=%d -> aborted (%s)", p.txn, sid, step.Object, dec.Reason)
		e.abortAttempt(p, dec.Reason, sid)
	}
	e.processEffects(s, &eff)
}

// afterExec handles a freshly executed operation: report edges to the
// coordinator if the transaction has any, and send the reply that lets
// the terminal issue the next step.
func (e *Engine) afterExec(p *sproc, s *simSite) {
	e.scheduleObserve(p, s)
	at := e.sendFromSite(s, e.cfg.SiteTime+e.lat())
	e.tl.Schedule(at, ev{kind: evOpDone, p: p, txn: p.txn})
}

// scheduleObserve captures the transaction's current out-edges at the
// site and sends them to the coordinator's mirror. Transactions that
// never had an edge skip the report entirely (the fast path that keeps
// partitioned traffic off the coordinator).
func (e *Engine) scheduleObserve(p *sproc, s *simSite) {
	edges := s.cr.OutEdgesAppend(p.txn, nil)
	if len(edges) > 0 {
		p.anyEdges = true
	}
	if !p.anyEdges {
		return
	}
	at := e.sendFromSite(s, e.lat())
	e.tl.Schedule(at, ev{kind: evObserve, p: p, txn: p.txn, site: s.idx, edges: edges})
}

// observeArrive ingests an edge report at the coordinator and runs the
// union-graph cycle check — the §6 detection of cross-site deadlocks
// and commit-dependency cycles.
func (e *Engine) observeArrive(event ev) {
	if stale(event) {
		return
	}
	p := event.p
	if p.state != spActive && p.state != spBlocked {
		// The attempt entered its commit conversation; the hold phase
		// re-exports every site's edges itself.
		return
	}
	e.mirror.Observe(event.site, event.txn, e.filterLive(event.edges))
	if e.mirror.HasCycleFrom(event.txn) {
		reason := core.ReasonCommitCycle
		if p.state == spBlocked {
			reason = core.ReasonDeadlock
		}
		e.tracef("cycle T%d (%s)", p.txn, reason)
		e.abortAttempt(p, reason, -1)
	}
}

// filterLive drops edges to transactions the coordinator has already
// finalised, exactly as the wall-clock coordinator does.
func (e *Engine) filterLive(edges []depgraph.Edge) []depgraph.Edge {
	live := edges[:0]
	for _, ed := range edges {
		if _, ok := e.procs[ed.To]; ok {
			live = append(live, ed)
		}
	}
	return live
}

// processEffects folds one scheduler call's downstream effects into
// the model: grants resume blocked transactions (with a service+reply
// latency), retry aborts unwind them, and — because queue movement can
// re-block parked transactions behind different holders — every
// transaction still parked at the site re-reports its edges, the
// simulator's refreshParked.
func (e *Engine) processEffects(s *simSite, eff *core.Effects) {
	if eff.Empty() {
		return
	}
	for i := range eff.Grants {
		g := &eff.Grants[i]
		q := e.procs[g.Txn]
		if q == nil || q.state != spBlocked || q.blockedSite != s.idx {
			continue
		}
		delete(s.parked, q.txn)
		q.state = spActive
		q.idx++
		e.tracef("grant T%d site=%d obj=%d", q.txn, s.idx, g.Object)
		if e.spans != nil {
			var blockDur int64
			if t0, ok := e.blockedAt[q.txn]; ok {
				blockDur = int64((e.tl.Now() - t0) * 1e9)
				delete(e.blockedAt, q.txn)
			}
			e.span(telemetry.SpanGrant, q.txn, s.idx, int64(g.Object), 0, blockDur)
		}
		e.afterExec(q, s)
	}
	var retries []core.RetryAbort
	if len(eff.RetryAborts) > 0 {
		retries = append(retries, eff.RetryAborts...)
	}
	for _, id := range eff.Committed {
		// Sites under a coordinator never cascade real commits on
		// their own (holds are excluded); surface it if one appears.
		e.tracef("unexpected site-local commit T%d at site %d", id, s.idx)
	}
	for _, ra := range retries {
		q := e.procs[ra.Txn]
		if q == nil || q.state != spBlocked {
			continue
		}
		delete(s.parked, q.txn)
		e.tracef("retry-abort T%d site=%d (%s)", q.txn, s.idx, ra.Reason)
		e.abortAttempt(q, ra.Reason, s.idx)
	}
	e.refreshParked(s)
}

// refreshParked re-reports the edges of every transaction still parked
// at the site, in ascending id order.
func (e *Engine) refreshParked(s *simSite) {
	if len(s.parked) == 0 {
		return
	}
	ids := make([]core.TxnID, 0, len(s.parked))
	for id := range s.parked {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if q, ok := s.parked[id]; ok && q.txn == id {
			e.scheduleObserve(q, s)
		}
	}
}

// abortAttempt unwinds the current attempt everywhere (skipping
// skipSite, where the local scheduler already finalised it, and any
// down site, whose volatile state died with it), removes the mirror
// node — cascading releases of transactions that depended on it — and
// schedules the logical transaction's resubmission after a backoff.
func (e *Engine) abortAttempt(p *sproc, reason core.AbortReason, skipSite int) {
	id := p.txn
	if p.state == spBlocked {
		delete(e.sites[p.blockedSite].parked, id)
	}
	for _, sid := range p.visited {
		if sid == skipSite {
			continue
		}
		s := e.sites[sid]
		if s.down() {
			continue
		}
		var eff core.Effects
		if err := s.cr.AbortInto(&eff, id); err == nil {
			s.cr.Forget(id)
			e.processEffects(s, &eff)
		} else {
			// A held pseudo-commit (partial conversation being
			// unwound) answers ErrTxnTerminated; revoke it instead.
			var eff2 core.Effects
			if err2 := s.cr.RevokeInto(&eff2, id, reason); err2 == nil {
				delete(s.prepTime, id)
				s.cr.Forget(id)
				e.processEffects(s, &eff2)
			}
		}
	}
	if e.coordGate && p.direct {
		// The gated model logged this direct commit before sending it;
		// the abort withdraws the record (dist.undoDirectCommit's
		// mirror) so a later coordinator restart cannot redo it.
		delete(e.relAcks, id)
		_ = e.flog.Truncate(id)
	}
	delete(e.procs, id)
	e.aborts++
	e.tracef("abort T%d (%s)", id, reason)
	if e.spans != nil {
		delete(e.blockedAt, id)
		e.span(telemetry.SpanAbort, id, skipSite, 0, 0, 0)
		e.completeSpan(id, e.tl.Now()-p.attemptStart)
	}
	p.txn = 0
	p.state = spWaitRetry
	p.attempts++
	e.finalize(id)
	e.tl.Schedule(e.tl.Now()+e.backoff(p.attempts), ev{kind: evResubmit, p: p})
}

// finalize removes a globally terminated transaction from the mirror
// and cascades: held transactions whose global dependency set drained
// reach their commit decision and start releasing. Under an
// eager-subtree policy the whole drained subtree is decided in one
// coordinator round.
func (e *Engine) finalize(id core.TxnID) {
	if e.policy != nil && e.policy.EagerSubtree() {
		e.finalizeEager(id)
		return
	}
	for _, d := range e.mirror.RemoveTxn(id) {
		q := e.procs[d]
		if q != nil && q.state == spHeld && e.mirror.OutDegree(d) == 0 {
			e.decideCommit(q)
		}
	}
}

// finalizeEager computes the transitive closure of drained held
// transactions in one coordinator instant: each ready transaction is
// treated as terminated for the rest of the walk, so a chain of depth k
// that the hop-at-a-time cascade would release over k per-level message
// round-trips starts releasing all at once. The ready list comes out in
// topological order and decideCommit fans each release out to every
// participant in that order on the FIFO coordinator→site channels, so
// at any shared site a dependant's release always arrives after its
// dependency's — the local out-degree has drained by the time the
// release lands, exactly the invariant the round-based cascade keeps.
func (e *Engine) finalizeEager(id core.TxnID) {
	queue := []core.TxnID{id}
	var ready []*sproc
	for qi := 0; qi < len(queue); qi++ {
		for _, d := range e.mirror.RemoveTxn(queue[qi]) {
			q := e.procs[d]
			if q != nil && q.state == spHeld && e.mirror.OutDegree(d) == 0 {
				queue = append(queue, d)
				ready = append(ready, q)
			}
		}
	}
	if len(ready) == 0 {
		return
	}
	e.eagerRounds++
	e.eagerReleased += len(ready)
	e.tracef("eager-release %d held", len(ready))
	for _, q := range ready {
		// A crash fired from an earlier decideCommit's step boundary
		// can have revoked a later subtree member; skip anything no
		// longer held.
		if q.txn != 0 && q.state == spHeld {
			e.decideCommit(q)
		}
	}
}
