package distsim

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGoldenRedoTrace pins the CrashRedo scenario's full event trace:
// the crash at AfterDecisionBeforeRelease, the skipped release, the
// restart and the redo must replay line-for-line identically. Run with
// UPDATE_GOLDEN=1 to regenerate after an intentional model change.
func TestGoldenRedoTrace(t *testing.T) {
	cfg := CrashRedo(11)
	cfg.RecordTrace = true
	res := run(t, cfg)
	got := strings.Join(res.Trace, "\n") + "\n"

	// Structural checks first, so a stale golden file cannot mask a
	// scenario that stopped exercising redo recovery.
	if res.Redone == 0 {
		t.Fatal("redo scenario redid nothing")
	}
	if !strings.Contains(got, "step AfterDecisionBeforeRelease") {
		t.Fatal("trace has no AfterDecisionBeforeRelease boundary")
	}
	if !strings.Contains(got, "crash site=") || !strings.Contains(got, "redone=[") {
		t.Fatal("trace is missing the crash or the recovery record")
	}
	if !strings.Contains(got, "skipped (down, redo at restart)") {
		t.Fatal("trace is missing the skipped release that forces the redo")
	}

	path := filepath.Join("testdata", "crash_redo_seed11.trace")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden trace updated: %d lines", len(res.Trace))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden trace missing (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got == string(want) {
		return
	}
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
		if gotLines[i] != wantLines[i] {
			t.Fatalf("trace diverges at line %d:\n got: %s\nwant: %s", i+1, gotLines[i], wantLines[i])
		}
	}
	t.Fatalf("trace length changed: got %d lines, want %d", len(gotLines), len(wantLines))
}

// TestConvoyCollapse reproduces the ROADMAP hold-convoy collapse
// deterministically: under the all-recoverable 40%-cross-site
// workload, terminals freed at pseudo-commit pile holds on faster than
// release cascades drain them, so the held set grows into the hundreds
// and real-commit throughput sits well below the terminal-perceived
// rate. The asserted floor is the fixed baseline a future bounded-hold
// policy must beat.
func TestConvoyCollapse(t *testing.T) {
	res := run(t, Convoy(42))
	if res.Held == 0 {
		t.Fatal("no conversation was held — not the convoy regime")
	}
	if res.ConvoyDepth.Max() < 100 {
		t.Fatalf("max convoy depth = %d, want >= 100 (collapse not reproduced)", res.ConvoyDepth.Max())
	}
	if rt, pt := res.RealThroughput(), res.PseudoThroughput(); rt >= 0.8*pt {
		t.Fatalf("real throughput %.1f/s vs pseudo %.1f/s — no collapse gap", rt, pt)
	}
	if res.PhaseHeldWait.Mean() < 10*res.PhaseRelease.Mean() {
		t.Fatalf("held wait (%.3fs mean) should dwarf the release round (%.3fs mean) in a convoy",
			res.PhaseHeldWait.Mean(), res.PhaseRelease.Mean())
	}
	// The whole point: the collapse is reproducible bit-for-bit.
	again := run(t, Convoy(42))
	if again.TraceHash != res.TraceHash {
		t.Fatalf("convoy scenario not deterministic: %016x vs %016x", res.TraceHash, again.TraceHash)
	}
	if again.ConvoyDepth.Max() != res.ConvoyDepth.Max() || again.RealCommits != res.RealCommits {
		t.Fatal("convoy metrics differ across same-seed runs")
	}
}

// TestConvoyBaseline42 pins the Convoy baseline run bit-for-bit. The
// constants below were recorded before the coordinator rewrite (the
// interned mirror, the sharded registry and the batched commit
// conversation), so this test is the proof that the many-core work
// changed no observable protocol behaviour: the seed-42 event trace
// hashes identically, and the convoy depth and real/pseudo throughput
// gap — the fixed baseline a future bounded-hold policy must beat —
// are exactly what they were. An intentional model change must update
// the constants in the same commit that explains it.
func TestConvoyBaseline42(t *testing.T) {
	const (
		baseHash   = uint64(0x71872824acbf006c)
		baseDepth  = 237
		baseReal   = 400
		basePseudo = 604
		baseHeld   = 684
		baseGap    = 36.4693 - 24.1519 // pseudo - real throughput, txn/s
	)
	res := run(t, Convoy(42))
	if res.TraceHash != baseHash {
		t.Fatalf("Convoy(42) trace hash = %016x, want %016x (event trace no longer bit-identical to the checked-in baseline)",
			res.TraceHash, baseHash)
	}
	if got := res.ConvoyDepth.Max(); got != baseDepth {
		t.Errorf("max convoy depth = %d, want %d", got, baseDepth)
	}
	if res.RealCommits != baseReal || res.PseudoCompletions != basePseudo {
		t.Errorf("commits = %d real / %d pseudo, want %d / %d",
			res.RealCommits, res.PseudoCompletions, baseReal, basePseudo)
	}
	if res.Held != baseHeld {
		t.Errorf("held conversations = %d, want %d", res.Held, baseHeld)
	}
	if gap := res.PseudoThroughput() - res.RealThroughput(); gap > baseGap+0.01 {
		t.Errorf("pseudo-real throughput gap = %.4f txn/s, baseline %.4f — convoy got worse", gap, baseGap)
	}
}

// TestSweepScale: one latency×cross sweep cell at simulated scale —
// 200 sites, far beyond what the wall-clock harness can host — runs to
// completion deterministically.
func TestSweepScale(t *testing.T) {
	cfg := SweepPoint(200, 100, 0.01, 0.2, 5)
	cfg.Completions = 300
	cfg.Warmup = 30
	res := run(t, cfg)
	if res.Sites != 200 {
		t.Fatalf("sites = %d", res.Sites)
	}
	if res.RealCommits != 300 {
		t.Fatalf("real commits = %d, want 300", res.RealCommits)
	}
	again := run(t, cfg)
	if again.TraceHash != res.TraceHash {
		t.Fatal("scale run not deterministic")
	}
}

// TestSeedMatrix is the CI determinism matrix: every checked-in
// scenario runs twice per seed and must hash identically; across
// seeds, hashes must differ.
func TestSeedMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix is the long determinism sweep")
	}
	type mk struct {
		name string
		mk   func(int64) Config
	}
	scenarios := []mk{
		{"small", small},
		{"redo", CrashRedo},
		{"presume", CrashPresume},
		{"coordcrash", CoordCrash},
		{"coordrelease", CoordCrashRelease},
		{"eagercrash", EagerReleaseCrash},
	}
	for _, sc := range scenarios {
		seen := map[uint64]int64{}
		for _, seed := range []int64{1, 2, 3} {
			a := run(t, sc.mk(seed))
			b := run(t, sc.mk(seed))
			if a.TraceHash != b.TraceHash {
				t.Errorf("%s seed %d: non-deterministic (%016x vs %016x)", sc.name, seed, a.TraceHash, b.TraceHash)
			}
			if prev, ok := seen[a.TraceHash]; ok {
				t.Errorf("%s: seeds %d and %d collide on %016x", sc.name, prev, seed, a.TraceHash)
			}
			seen[a.TraceHash] = seed
		}
	}
}
