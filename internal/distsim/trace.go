package distsim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// fnvOffset/fnvPrime are the FNV-1a 64-bit constants.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// tracef appends one trace line: the line is always folded into the
// run's FNV-1a hash (the determinism fingerprint) and kept verbatim
// only when Config.RecordTrace asks for it. Times are printed with
// fixed precision so the byte stream — and therefore the hash — is a
// pure function of the event sequence.
func (e *Engine) tracef(format string, args ...any) {
	if e.draining {
		// The post-target drain is measurement-only: the hash (and the
		// recorded trace) freeze at the completion target, so a
		// policy-off run stays bit-identical to the checked-in
		// baselines whether or not a drain phase follows.
		return
	}
	line := fmt.Sprintf("t=%.6f ", e.tl.Now()) + fmt.Sprintf(format, args...)
	h := e.traceHash
	for i := 0; i < len(line); i++ {
		h ^= uint64(line[i])
		h *= fnvPrime
	}
	h ^= '\n'
	h *= fnvPrime
	e.traceHash = h
	e.traceLen++
	if e.cfg.RecordTrace {
		e.trace = append(e.trace, line)
	}
}

// span records one causal span stamped from the virtual clock. Span
// emission is deliberately decoupled from tracef: it never touches the
// trace hash, never draws randomness, and keeps recording through the
// drain phase, so a run's determinism fingerprint is bit-identical
// with the span plane on or off.
func (e *Engine) span(kind telemetry.SpanKind, txn core.TxnID, site int, object, wave, dur int64) {
	if e.spans == nil {
		return
	}
	e.spans.Record(e.sampler.Context(uint64(txn)), kind, uint64(txn), int32(site), object, wave, dur)
}

// completeSpan folds the transaction's finished trace into the
// exemplar store with the given virtual latency (seconds).
func (e *Engine) completeSpan(txn core.TxnID, latency float64) {
	if e.spans == nil {
		return
	}
	e.spans.Complete(e.sampler.Context(uint64(txn)), uint64(txn), int64(latency*1e9))
}
