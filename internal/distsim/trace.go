package distsim

import "fmt"

// fnvOffset/fnvPrime are the FNV-1a 64-bit constants.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// tracef appends one trace line: the line is always folded into the
// run's FNV-1a hash (the determinism fingerprint) and kept verbatim
// only when Config.RecordTrace asks for it. Times are printed with
// fixed precision so the byte stream — and therefore the hash — is a
// pure function of the event sequence.
func (e *Engine) tracef(format string, args ...any) {
	if e.draining {
		// The post-target drain is measurement-only: the hash (and the
		// recorded trace) freeze at the completion target, so a
		// policy-off run stays bit-identical to the checked-in
		// baselines whether or not a drain phase follows.
		return
	}
	line := fmt.Sprintf("t=%.6f ", e.tl.Now()) + fmt.Sprintf(format, args...)
	h := e.traceHash
	for i := 0; i < len(line); i++ {
		h ^= uint64(line[i])
		h *= fnvPrime
	}
	h ^= '\n'
	h *= fnvPrime
	e.traceHash = h
	e.traceLen++
	if e.cfg.RecordTrace {
		e.trace = append(e.trace, line)
	}
}
