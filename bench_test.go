// Benchmarks regenerating the paper's evaluation, one per table and
// figure, plus microbenchmarks of the protocol's moving parts.
//
// Figure benchmarks run a shrunken-but-shape-preserving version of the
// corresponding experiment (fewer completions, a subset of the mpl
// sweep) and report the interesting series as custom metrics
// (simulated transactions/second etc.). Regenerate figures at full
// scale with:
//
//	go run ./cmd/sccbench -experiment fig4            # laptop scale
//	go run ./cmd/sccbench -experiment fig4 -paper     # paper scale
//
// Run these benchmarks with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro"
	"repro/internal/adt"
	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/distsim"
	"repro/internal/experiments"
	"repro/internal/workload"
)

// benchOpts shrinks an experiment for benchmarking while keeping the
// paper's database size and terminal count (the contention shape).
func benchOpts() experiments.RunOpts {
	return experiments.RunOpts{
		Completions: 800,
		Warmup:      80,
		Runs:        1,
		Seed:        1,
		DBSize:      1000,
		Terminals:   200,
	}
}

// runFigure executes experiment id over a reduced sweep and reports
// every series' value at each x as a custom benchmark metric.
func runFigure(b *testing.B, id string, xs []float64) {
	b.Helper()
	spec, err := experiments.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	reduced := *spec
	reduced.XValues = xs
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res, err = reduced.Run(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, pt := range res.Points {
		for _, col := range res.Columns() {
			b.ReportMetric(pt.Values[col].Mean, fmt.Sprintf("%s@%g", col, pt.X))
		}
	}
}

// One benchmark per figure of the paper's evaluation (§5.5).

func BenchmarkFig4(b *testing.B)  { runFigure(b, "fig4", []float64{10, 50, 200}) }
func BenchmarkFig5(b *testing.B)  { runFigure(b, "fig5", []float64{10, 50, 200}) }
func BenchmarkFig6(b *testing.B)  { runFigure(b, "fig6", []float64{10, 50, 200}) }
func BenchmarkFig7(b *testing.B)  { runFigure(b, "fig7", []float64{10, 50, 200}) }
func BenchmarkFig8(b *testing.B)  { runFigure(b, "fig8", []float64{10, 50, 200}) }
func BenchmarkFig9(b *testing.B)  { runFigure(b, "fig9", []float64{10, 50, 200}) }
func BenchmarkFig10(b *testing.B) { runFigure(b, "fig10", []float64{10, 50, 200}) }
func BenchmarkFig11(b *testing.B) { runFigure(b, "fig11", []float64{10, 50}) }
func BenchmarkFig12(b *testing.B) { runFigure(b, "fig12", []float64{10, 50, 200}) }
func BenchmarkFig13(b *testing.B) { runFigure(b, "fig13", []float64{10, 50, 200}) }
func BenchmarkFig14(b *testing.B) { runFigure(b, "fig14", []float64{10, 50, 200}) }
func BenchmarkFig15(b *testing.B) { runFigure(b, "fig15", []float64{10, 50, 200}) }
func BenchmarkFig16(b *testing.B) { runFigure(b, "fig16", []float64{10, 50, 200}) }
func BenchmarkFig17(b *testing.B) { runFigure(b, "fig17", []float64{10, 50, 200}) }
func BenchmarkFig18(b *testing.B) { runFigure(b, "fig18", []float64{10, 50}) }

// Ablation benchmarks (DESIGN.md ablations A, B, D).

func BenchmarkAblationPseudoCommit(b *testing.B) {
	runFigure(b, "ablation-pseudo", []float64{25, 100})
}
func BenchmarkAblationFakeRestart(b *testing.B) {
	runFigure(b, "ablation-fakerestart", []float64{50, 200})
}
func BenchmarkWriteProbSweep(b *testing.B) {
	runFigure(b, "ablation-writeprob", []float64{10, 50, 90})
}

// BenchmarkRecoveryStrategies (ablation C) compares the wall-clock cost
// of the two §4.4 recovery strategies on an abort-heavy workload — the
// simulated metrics are identical by construction (proven in the test
// suite), so the interesting number is real time per simulated
// completion.
func BenchmarkRecoveryStrategies(b *testing.B) {
	for _, rec := range []repro.Recovery{repro.RecoveryIntentions, repro.RecoveryUndo} {
		b.Run(rec.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := repro.DefaultSimConfig(repro.MixWorkload{DBSize: 300, ArgRange: 6}, 100, 1)
				cfg.Recovery = rec
				cfg.Completions = 2000
				cfg.Warmup = 200
				if _, err := repro.Simulate(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Tables I–VIII: benchmark the derivation engine that reproduces them
// from Definitions 1–2.
func BenchmarkTablesDerivation(b *testing.B) {
	types := []adt.Enumerable{adt.Page{}, adt.Stack{}, adt.Set{}, adt.KTable{}}
	for _, typ := range types {
		b.Run(typ.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tab := compat.Derive(typ)
				if len(tab.Ops) == 0 {
					b.Fatal("empty table")
				}
			}
		})
	}
}

// BenchmarkGeneratedTables covers the §5.5.2 random table generator.
func BenchmarkGeneratedTables(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		if g := compat.MustGenerate(rng, 4, 4, 8); g == nil {
			b.Fatal("nil table")
		}
	}
}

// ---- Protocol microbenchmarks ----

// BenchmarkSchedulerCommutingOps measures the per-operation cost of the
// fast path (everything commutes, no cycle checks).
func BenchmarkSchedulerCommutingOps(b *testing.B) {
	s := core.NewScheduler(core.Options{})
	if err := s.Register(1, adt.Set{}, compat.SetTable()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var id core.TxnID
	for i := 0; i < b.N; i++ {
		id++
		if err := s.Begin(id); err != nil {
			b.Fatal(err)
		}
		op := repro.Member(i % 97)
		if dec, _, err := s.Request(id, 1, op); err != nil || dec.Outcome != core.Executed {
			b.Fatalf("%v %v", dec, err)
		}
		if _, _, err := s.Commit(id); err != nil {
			b.Fatal(err)
		}
		s.Forget(id)
	}
}

// BenchmarkSchedulerRecoverableOps measures the recoverable path —
// commit-dependency edges, a cycle check, pseudo-commit and cascade —
// with one self-contained pair of transactions per iteration so the
// logs stay bounded.
func BenchmarkSchedulerRecoverableOps(b *testing.B) {
	s := core.NewScheduler(core.Options{})
	if err := s.Register(1, adt.Stack{}, compat.StackTable()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	id := core.TxnID(0)
	for i := 0; i < b.N; i++ {
		ta, tb := id+1, id+2
		id += 2
		if err := s.Begin(ta); err != nil {
			b.Fatal(err)
		}
		if err := s.Begin(tb); err != nil {
			b.Fatal(err)
		}
		if dec, _, err := s.Request(ta, 1, repro.Push(i)); err != nil || dec.Outcome != core.Executed {
			b.Fatalf("%v %v", dec, err)
		}
		// The recoverable path: executes over ta's uncommitted push.
		if dec, _, err := s.Request(tb, 1, repro.Push(i+1)); err != nil || dec.Outcome != core.Executed {
			b.Fatalf("%v %v", dec, err)
		}
		if st, _, err := s.Commit(tb); err != nil || st != core.PseudoCommitted {
			b.Fatalf("%v %v", st, err)
		}
		if st, _, err := s.Commit(ta); err != nil || st != core.Committed {
			b.Fatalf("%v %v", st, err)
		}
		s.Forget(ta)
		s.Forget(tb)
	}
}

// BenchmarkCycleDetection measures HasCycleFrom on a dependency chain
// of the worst-case length the simulator sees (mpl=200 transactions).
func BenchmarkCycleDetection(b *testing.B) {
	s := core.NewScheduler(core.Options{})
	if err := s.Register(1, adt.Page{}, compat.PageTable()); err != nil {
		b.Fatal(err)
	}
	// 200 stacked writers: each new write adds commit-dep edges to
	// every prior writer and runs one cycle check.
	for id := core.TxnID(1); id <= 200; id++ {
		if err := s.Begin(id); err != nil {
			b.Fatal(err)
		}
		if dec, _, err := s.Request(id, 1, repro.Write(int(id))); err != nil || dec.Outcome != core.Executed {
			b.Fatal("setup write failed")
		}
	}
	b.ResetTimer()
	id := core.TxnID(200)
	for i := 0; i < b.N; i++ {
		id++
		if err := s.Begin(id); err != nil {
			b.Fatal(err)
		}
		if dec, _, err := s.Request(id, 1, repro.Write(i)); err != nil || dec.Outcome != core.Executed {
			b.Fatal("bench write failed")
		}
		// Aborting keeps the graph from growing without bound while
		// exercising removal too.
		if _, err := s.Abort(id); err != nil {
			b.Fatal(err)
		}
		s.Forget(id)
	}
}

// BenchmarkClassification measures the compatibility-table lookup the
// object manager performs per uncommitted log entry. Since the compiled
// classifiers landed, that per-entry cost is a dense array lookup over
// op ids interned once per request (see object.classifyAgainstLog);
// the ByName and Table variants below track the costs of per-call name
// interning and of the original string-indexed Table.Classify.
func BenchmarkClassification(b *testing.B) {
	comp := compat.KTableTable().Compile()
	req := repro.TableInsert(3, 9)
	exec := repro.TableSize()
	row := comp.Row(comp.OpID(req.Name), false)
	execID := comp.OpID(exec.Name)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if row.Classify(execID, req.SameArg(exec)) != compat.Recoverable {
			b.Fatal("unexpected classification")
		}
	}
}

// BenchmarkClassificationByName is the compiled classifier resolving
// both operation names per call (what a one-off Classify costs).
func BenchmarkClassificationByName(b *testing.B) {
	comp := compat.KTableTable().Compile()
	req := repro.TableInsert(3, 9)
	exec := repro.TableSize()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if comp.Classify(req, exec) != compat.Recoverable {
			b.Fatal("unexpected classification")
		}
	}
}

// BenchmarkClassificationTable is the uncompiled, entry-logic
// Table.Classify the scheduler falls back to for classifiers it cannot
// compile.
func BenchmarkClassificationTable(b *testing.B) {
	tab := compat.KTableTable()
	req := repro.TableInsert(3, 9)
	exec := repro.TableSize()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tab.Classify(req, exec) != compat.Recoverable {
			b.Fatal("unexpected classification")
		}
	}
}

// BenchmarkBlockingHandles measures the goroutine front end end-to-end:
// one blocked pop handed over between two handles per iteration.
func BenchmarkBlockingHandles(b *testing.B) {
	db := repro.NewDB(repro.Options{})
	if err := db.Register(1, adt.Stack{}, compat.StackTable()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t1 := db.Begin()
		if _, err := t1.Do(1, repro.Push(i)); err != nil {
			b.Fatal(err)
		}
		t2 := db.Begin()
		done := make(chan error, 1)
		go func() {
			_, err := t2.Do(1, repro.Pop()) // blocks until t1 commits
			done <- err
		}()
		if _, err := t1.Commit(); err != nil {
			b.Fatal(err)
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
		if _, err := t2.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Shard-scaling benchmarks (internal/dist) ----

// BenchmarkShardScaling measures parallel transaction throughput on an
// independent-object workload as the object space is sharded across
// 1..N sites. Each parallel worker owns one object, so transactions
// never conflict: with one shard every request funnels through a
// single scheduler mutex (the pre-sharding architecture); with N
// shards the sites proceed in parallel and never touch the
// coordinator. shards=1 is the single-scheduler baseline the N-shard
// numbers should beat on multicore hardware.
func BenchmarkShardScaling(b *testing.B) {
	const objects = 64
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c, err := dist.New(shards, core.Options{}, nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			for id := core.ObjectID(1); id <= objects; id++ {
				if err := c.Register(id, adt.Set{}, compat.SetTable()); err != nil {
					b.Fatal(err)
				}
			}
			var next atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				obj := core.ObjectID(1 + (next.Add(1)-1)%objects)
				i := 0
				for pb.Next() {
					i++
					t := c.Begin()
					if _, err := t.Do(obj, repro.Insert(i)); err != nil {
						b.Error(err)
						return
					}
					if _, err := t.Commit(); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkFaultToleranceNoCrash pins the cost of the crash-stop
// machinery on the path that must not pay for it: single-site
// commuting transactions on a plain cluster vs a fault-tolerant one.
// The fault layer adds one wrapper mutex and redo-history recording
// per call; the acceptance bar is staying within a few percent of
// plain (the fast path takes no decision-log write and no prepare).
func BenchmarkFaultToleranceNoCrash(b *testing.B) {
	const objects = 64
	for _, mode := range []string{"plain", "fault"} {
		b.Run(mode, func(b *testing.B) {
			c, err := dist.NewWithConfig(dist.Config{Sites: 4, FaultTolerant: mode == "fault"})
			if err != nil {
				b.Fatal(err)
			}
			for id := core.ObjectID(1); id <= objects; id++ {
				if err := c.Register(id, adt.Set{}, compat.SetTable()); err != nil {
					b.Fatal(err)
				}
			}
			var next atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				obj := core.ObjectID(1 + (next.Add(1)-1)%objects)
				i := 0
				for pb.Next() {
					i++
					t := c.Begin()
					if _, err := t.Do(obj, repro.Insert(i)); err != nil {
						b.Error(err)
						return
					}
					if _, err := t.Commit(); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkShardScalingContended is the same sweep under a sharded
// read/write workload with 10% cross-site steps — dependency edges,
// mirror traffic and held commits included, closer to a real mixed
// load than the perfectly partitionable case above.
func BenchmarkShardScalingContended(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c, err := dist.New(shards, core.Options{}, nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			gen := workload.Sharded{
				Inner: workload.ReadWrite{DBSize: 512, WriteProb: 0.3},
				Sites: shards, CrossProb: 0.1,
			}
			c.SetFactory(gen.Factory())
			var seed atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				r := rand.New(rand.NewSource(seed.Add(1)))
				for pb.Next() {
					steps := gen.NewTxn(r, 8)
				restart:
					t := c.Begin()
					for _, st := range steps {
						if _, err := t.Do(st.Object, st.Op); err != nil {
							if errors.Is(err, core.ErrTxnAborted) {
								goto restart // retry, as the simulator does
							}
							b.Error(err)
							return
						}
					}
					if _, err := t.Commit(); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// ---- Coordinator benchmarks (the many-core lock split) ----

// BenchmarkCoordinatorEdgeFree measures the sharded-registry fast path
// under parallel load: single-site commuting transactions on an 8-site
// cluster, one private object per worker, so the only shared state a
// round trip touches is its registry shard (Begin/finalize) — never the
// mirror, never the decision-log domain. Run with -cpu 1,2,4 for the
// GOMAXPROCS scaling matrix; with the old single Cluster.mu every
// Begin/finalize serialised here.
func BenchmarkCoordinatorEdgeFree(b *testing.B) {
	const objects = 64
	c, err := dist.New(8, core.Options{}, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	for id := core.ObjectID(1); id <= objects; id++ {
		if err := c.Register(id, adt.Set{}, compat.SetTable()); err != nil {
			b.Fatal(err)
		}
	}
	var next atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		obj := core.ObjectID(1 + (next.Add(1)-1)%objects)
		i := 0
		for pb.Next() {
			i++
			t := c.Begin()
			if _, err := t.Do(obj, repro.Insert(i)); err != nil {
				b.Error(err)
				return
			}
			if _, err := t.Commit(); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkCoordinatorConversation measures the full coordinated path
// through the decide pipeline: per iteration one writer pseudo-commits
// over a one-edge commit dependency, is held, and is released when its
// predecessor commits. Each parallel worker runs its own object, so
// concurrent conversations are independent — exactly the traffic the
// flat-combining wave coalesces into batched mirror observes and (on
// the fault variant) grouped decision-log forces. The traced mode runs
// the plain cluster with the span plane armed at sample rate 1 (every
// transaction stamps begin/hold/decide/release spans into the ring and
// competes for the exemplar store) — the worst-case tracing overhead
// recorded in BENCH_5.json; plain vs traced is the cost of the plane.
func BenchmarkCoordinatorConversation(b *testing.B) {
	for _, mode := range []string{"plain", "fault", "traced"} {
		b.Run(mode, func(b *testing.B) {
			cfg := dist.Config{Sites: 4, FaultTolerant: mode == "fault"}
			if mode == "traced" {
				cfg.Spans = 1 << 14
				cfg.SpanExemplars = 8
				cfg.SampleSeed = 1
				cfg.SampleRate = 1
			}
			c, err := dist.NewWithConfig(cfg)
			if err != nil {
				b.Fatal(err)
			}
			const objects = 64
			for id := core.ObjectID(1); id <= objects; id++ {
				if err := c.Register(id, adt.Stack{}, compat.StackTable()); err != nil {
					b.Fatal(err)
				}
			}
			var next atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				obj := core.ObjectID(1 + (next.Add(1)-1)%objects)
				i := 0
				for pb.Next() {
					i += 2
					t1, t2 := c.Begin(), c.Begin()
					if _, err := t1.Do(obj, repro.Push(i)); err != nil {
						b.Error(err)
						return
					}
					// Distinct pushes: recoverable, not commuting — T2
					// executes at once with a commit dependency on T1.
					if _, err := t2.Do(obj, repro.Push(i+1)); err != nil {
						b.Error(err)
						return
					}
					if st, err := t2.Commit(); err != nil || st != core.PseudoCommitted {
						b.Errorf("T2 commit = %v %v", st, err)
						return
					}
					if st, err := t1.Commit(); err != nil || st != core.Committed {
						b.Errorf("T1 commit = %v %v", st, err)
						return
					}
					<-t2.Done()
					if err := t2.Err(); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkCoordinatorHotKey is the contended sweep under zipfian key
// popularity (workload.Sharded.Skew): each home partition funnels most
// of its traffic onto its hot key, so dependency edges, holds and the
// decide pipeline dominate instead of the edge-free fast path. skew=0
// is the uniform-routing control.
func BenchmarkCoordinatorHotKey(b *testing.B) {
	for _, skew := range []float64{0, 1.5} {
		b.Run(fmt.Sprintf("skew=%g", skew), func(b *testing.B) {
			c, err := dist.New(8, core.Options{}, nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			gen := workload.Sharded{
				Inner: workload.ReadWrite{DBSize: 512, WriteProb: 0.3},
				Sites: 8, CrossProb: 0.1, Skew: skew,
			}
			c.SetFactory(gen.Factory())
			var seed atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				r := rand.New(rand.NewSource(seed.Add(1)))
				for pb.Next() {
					steps := gen.NewTxn(r, 8)
				restart:
					t := c.Begin()
					for _, st := range steps {
						if _, err := t.Do(st.Object, st.Op); err != nil {
							if errors.Is(err, core.ErrTxnAborted) {
								goto restart // retry, as the simulator does
							}
							b.Error(err)
							return
						}
					}
					if _, err := t.Commit(); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkSimulatorEventRate measures raw simulator speed (events are
// dominated by operation steps) in simulated completions per wall
// second.
// BenchmarkConvoySim runs the seed-42 hold-convoy scenario through the
// multi-site simulator, policy off (the unbounded baseline) and under
// each bounded-hold policy. Virtual work tracks real work here: the
// baseline simulates the full 237-deep convoy and its drain, so the
// policy variants' lower op times are the release-machinery savings
// themselves, deterministically reproducible.
func BenchmarkConvoySim(b *testing.B) {
	for _, tc := range []struct {
		name   string
		policy dist.HoldPolicy
	}{
		{"off", nil},
		{"depth=16", dist.DepthBound{Max: 16}},
		{"eager", dist.EagerRelease{}},
		{"admit=32-16", &dist.Admission{High: 32, Low: 16}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng, err := distsim.NewEngine(distsim.ConvoyPolicy(42, tc.policy))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSimulatorEventRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := repro.DefaultSimConfig(repro.ReadWriteWorkload{DBSize: 1000, WriteProb: 0.3}, 50, 1)
		cfg.Completions = 5000
		cfg.Warmup = 0
		if _, err := repro.Simulate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Sanity tests for the facade (kept beside the benchmarks so the
// root package has test coverage too) ----

func TestFacadeOpConstructors(t *testing.T) {
	cases := []struct {
		op   repro.Op
		name string
	}{
		{repro.Push(1), "push"}, {repro.Pop(), "pop"}, {repro.Top(), "top"},
		{repro.Read(), "read"}, {repro.Write(1), "write"},
		{repro.Insert(1), "insert"}, {repro.Delete(1), "delete"}, {repro.Member(1), "member"},
		{repro.TableInsert(1, 2), "insert"}, {repro.TableDelete(1), "delete"},
		{repro.TableLookup(1), "lookup"}, {repro.TableSize(), "size"}, {repro.TableModify(1, 2), "modify"},
	}
	for _, c := range cases {
		if c.op.Name != c.name {
			t.Errorf("op = %+v, want name %s", c.op, c.name)
		}
	}
	if !repro.TableInsert(1, 2).HasAux || repro.TableSize().HasArg {
		t.Error("arity wrong on table ops")
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	db := repro.NewDB(repro.Options{})
	if err := db.Register(1, repro.Set{}, repro.SetTable()); err != nil {
		t.Fatal(err)
	}
	h := db.Begin()
	if ret, err := h.Do(1, repro.Insert(3)); err != nil || ret.Code != repro.RetCodeOK {
		t.Fatalf("insert: %v %v", ret, err)
	}
	if ret, err := h.Do(1, repro.Member(3)); err != nil || ret.Code != repro.RetCodeYes {
		t.Fatalf("member: %v %v", ret, err)
	}
	if st, err := h.Commit(); err != nil || st != repro.Committed {
		t.Fatalf("commit: %v %v", st, err)
	}
	if len(repro.ExperimentIDs()) == 0 {
		t.Error("no experiments registered")
	}
}

// TestFacadeStoreBothBackends runs one transaction body through the
// re-exported Store interface on both back ends — the point of the
// unified client API.
func TestFacadeStoreBothBackends(t *testing.T) {
	cluster, err := repro.NewCluster(2, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for name, st := range map[string]repro.Store{
		"db":      repro.NewDB(repro.Options{}),
		"cluster": cluster,
	} {
		if err := st.Register(1, repro.Set{}, repro.SetTable()); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		err := st.Run(context.Background(), func(tx repro.Txn) error {
			if _, err := tx.Do(1, repro.Insert(7)); err != nil {
				return err
			}
			ret, err := tx.Do(1, repro.Member(7))
			if err != nil {
				return err
			}
			if ret.Code != repro.RetCodeYes {
				return fmt.Errorf("member after insert = %v", ret)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%s: Run = %v", name, err)
		}
		if stats := st.Stats(); stats.Commits != 1 || stats.Executes != 2 {
			t.Fatalf("%s: stats = %+v", name, stats)
		}
		if err := st.Close(); err != nil {
			t.Fatalf("%s: Close = %v", name, err)
		}
		if _, err := st.Begin().Do(1, repro.Insert(8)); !errors.Is(err, repro.ErrClosed) {
			t.Fatalf("%s: Do after Close = %v", name, err)
		}
	}
}
