// Command freeports prints N free TCP port numbers on one line —
// scripts use it to pick loopback ports without races against fixed
// defaults. The ports are bound briefly and released, so a small
// window remains; good enough for test scripts.
package main

import (
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
)

func main() {
	n := 1
	if len(os.Args) > 1 {
		v, err := strconv.Atoi(os.Args[1])
		if err != nil || v < 1 {
			fmt.Fprintln(os.Stderr, "usage: freeports [n]")
			os.Exit(2)
		}
		n = v
	}
	var ports []string
	var listeners []net.Listener
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "freeports:", err)
			os.Exit(1)
		}
		listeners = append(listeners, ln)
		ports = append(ports, strconv.Itoa(ln.Addr().(*net.TCPAddr).Port))
	}
	for _, ln := range listeners {
		ln.Close()
	}
	fmt.Println(strings.Join(ports, " "))
}
