#!/usr/bin/env bash
# cluster_smoke.sh — end-to-end smoke of the multi-process cluster:
# two sccd site daemons plus one sccd coordinator on loopback TCP,
# driven by sccctl. The coordinator is kill -9'd while a conservation
# load is running, restarted on the same decision log, and the load
# must complete with every stack's committed depth exactly equal to
# its committed pushes (exactly-once across the coordinator crash).
#
# Usage: scripts/cluster_smoke.sh   (from the repo root; needs go)
set -u

DIR="$(mktemp -d /tmp/scc_smoke.XXXXXX)"
BIN="$DIR/bin"
LOG="$DIR/logs"
mkdir -p "$BIN" "$LOG"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

fail() {
  echo "SMOKE FAIL: $*" >&2
  echo "---- coordinator log ----" >&2; cat "$LOG"/coord*.log >&2 2>/dev/null || true
  echo "---- daemon logs ----" >&2; cat "$LOG"/site*.log >&2 2>/dev/null || true
  exit 1
}

echo "== build"
go build -o "$BIN/sccd" ./cmd/sccd || fail "build sccd"
go build -o "$BIN/sccctl" ./cmd/sccctl || fail "build sccctl"

# Ports: ask the kernel for free ones via a tiny helper.
read -r P_CLIENT P_D0 P_D1 <<EOF
$(go run ./scripts/freeports 3 2>/dev/null || echo "7411 7412 7413")
EOF

CFG="$DIR/cluster.json"
cat > "$CFG" <<EOF
{
  "client":   "127.0.0.1:$P_CLIENT",
  "log":      "$DIR/decision.log",
  "sync":     false,
  "workload": "pushes:32",
  "daemons": [
    {"listen": "127.0.0.1:$P_D0", "sites": [0, 1]},
    {"listen": "127.0.0.1:$P_D1", "sites": [2, 3]}
  ]
}
EOF

echo "== start site daemons"
"$BIN/sccd" -config "$CFG" -role site -daemon 0 > "$LOG/site0.log" 2>&1 &
PIDS+=($!)
"$BIN/sccd" -config "$CFG" -role site -daemon 1 > "$LOG/site1.log" 2>&1 &
PIDS+=($!)

echo "== start coordinator"
"$BIN/sccd" -config "$CFG" -role coord > "$LOG/coord1.log" 2>&1 &
COORD_PID=$!
PIDS+=($COORD_PID)

echo "== init (readiness barrier)"
"$BIN/sccctl" -config "$CFG" -wait 20s init || fail "init"

echo "== load with mid-flight coordinator kill -9"
"$BIN/sccctl" -config "$CFG" load -workers 6 -txns 300 -seed 42 -verify > "$LOG/load.log" 2>&1 &
LOAD_PID=$!

# Let the load get going, then kill the coordinator the hard way.
sleep 1
kill -9 "$COORD_PID" 2>/dev/null || fail "coordinator already gone before kill"
echo "== coordinator killed (kill -9), restarting on the same decision log"
sleep 0.5
"$BIN/sccd" -config "$CFG" -role coord > "$LOG/coord2.log" 2>&1 &
PIDS+=($!)

echo "== waiting for load to complete"
# Bounded wait: a wedged load must fail fast with goroutine dumps in
# the log, not hang the whole CI job. SIGQUIT makes the Go runtime
# print all stacks before exiting.
DEADLINE=${SMOKE_LOAD_TIMEOUT:-120}
waited=0
while kill -0 "$LOAD_PID" 2>/dev/null; do
  if [ "$waited" -ge "$DEADLINE" ]; then
    kill -QUIT "$LOAD_PID" 2>/dev/null || true
    sleep 2
    echo "---- load log (stalled, goroutine dump below) ----" >&2
    cat "$LOG/load.log" >&2 2>/dev/null || true
    fail "load still running after ${DEADLINE}s (stall; stacks above)"
  fi
  sleep 1
  waited=$((waited + 1))
done
if ! wait "$LOAD_PID"; then
  echo "---- load log ----" >&2; cat "$LOG/load.log" >&2 2>/dev/null || true
  fail "load did not survive the coordinator restart (see $LOG/load.log)"
fi
grep -q "conservation verified" "$LOG/load.log" || fail "load finished without verifying conservation"
cat "$LOG/load.log"

echo "== status after recovery"
"$BIN/sccctl" -config "$CFG" status || fail "status after recovery"

echo "== clean daemon shutdown via sccctl kill"
"$BIN/sccctl" -config "$CFG" kill -daemon 0 || fail "kill daemon 0"
"$BIN/sccctl" -config "$CFG" kill -daemon 1 || fail "kill daemon 1"

echo "SMOKE PASS"
