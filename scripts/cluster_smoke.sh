#!/usr/bin/env bash
# cluster_smoke.sh — end-to-end smoke of the multi-process cluster:
# two sccd site daemons plus one sccd coordinator on loopback TCP,
# driven by sccctl. The coordinator is kill -9'd while a conservation
# load is running, restarted on the same decision log, and the load
# must complete with every stack's committed depth exactly equal to
# its committed pushes (exactly-once across the coordinator crash).
#
# The debug plane is on for all three processes: /metrics is scraped
# from each while the load is in flight, and after quiesce the
# coordinator's /statusz must show the decision-log conservation
# invariant (logged + adopted == resolved, live == 0) and live
# PolicyStats for the configured hold policy.
#
# Usage: scripts/cluster_smoke.sh   (from the repo root; needs go)
set -u

DIR="$(mktemp -d /tmp/scc_smoke.XXXXXX)"
BIN="$DIR/bin"
LOG="$DIR/logs"
mkdir -p "$BIN" "$LOG"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

fail() {
  echo "SMOKE FAIL: $*" >&2
  echo "---- coordinator log ----" >&2; cat "$LOG"/coord*.log >&2 2>/dev/null || true
  echo "---- daemon logs ----" >&2; cat "$LOG"/site*.log >&2 2>/dev/null || true
  exit 1
}

echo "== build"
go build -o "$BIN/sccd" ./cmd/sccd || fail "build sccd"
go build -o "$BIN/sccctl" ./cmd/sccctl || fail "build sccctl"

# Ports: ask the kernel for free ones via a tiny helper. Three for
# the cluster itself, three for the per-process debug planes.
read -r P_CLIENT P_D0 P_D1 P_DBG_CO P_DBG_D0 P_DBG_D1 <<EOF
$(go run ./scripts/freeports 6 2>/dev/null || echo "7411 7412 7413 7414 7415 7416")
EOF

FLIGHT_DIR="$DIR/flight"
mkdir -p "$FLIGHT_DIR"
CFG="$DIR/cluster.json"
cat > "$CFG" <<EOF
{
  "client":   "127.0.0.1:$P_CLIENT",
  "log":      "$DIR/decision.log",
  "sync":     false,
  "workload": "pushes:32",
  "policy":   "depth=4",
  "debug":    "127.0.0.1:$P_DBG_CO",
  "trace":    4096,
  "spans":    32768,
  "span_exemplars": 8,
  "sample_rate": 1,
  "sample_seed": 42,
  "flight":   2048,
  "flight_dir": "$FLIGHT_DIR",
  "daemons": [
    {"listen": "127.0.0.1:$P_D0", "sites": [0, 1], "debug": "127.0.0.1:$P_DBG_D0"},
    {"listen": "127.0.0.1:$P_D1", "sites": [2, 3], "debug": "127.0.0.1:$P_DBG_D1"}
  ]
}
EOF

# scrape HOST:PORT PATT...: curl a debug plane's /metrics and require
# every pattern to appear. curl retries cover the restart window.
scrape() {
  local addr="$1"; shift
  local body
  body="$(curl -sf --retry 5 --retry-connrefused "http://$addr/metrics")" \
    || fail "scrape http://$addr/metrics"
  for patt in "$@"; do
    echo "$body" | grep -q "$patt" \
      || fail "metrics from $addr missing '$patt'"
  done
}

echo "== start site daemons"
"$BIN/sccd" -config "$CFG" -role site -daemon 0 > "$LOG/site0.log" 2>&1 &
SITE0_PID=$!
PIDS+=($SITE0_PID)
"$BIN/sccd" -config "$CFG" -role site -daemon 1 > "$LOG/site1.log" 2>&1 &
SITE1_PID=$!
PIDS+=($SITE1_PID)

echo "== start coordinator"
"$BIN/sccd" -config "$CFG" -role coord > "$LOG/coord1.log" 2>&1 &
COORD_PID=$!
PIDS+=($COORD_PID)

echo "== init (readiness barrier)"
"$BIN/sccctl" -config "$CFG" -wait 20s init || fail "init"

echo "== load with mid-flight coordinator kill -9"
"$BIN/sccctl" -config "$CFG" load -workers 6 -txns 300 -seed 42 -verify > "$LOG/load.log" 2>&1 &
LOAD_PID=$!

# Let the load get going, then scrape every debug plane while the
# cluster is under fire: the coordinator must be logging decisions and
# running the conversation, the site daemons must be executing.
sleep 1
echo "== mid-load /metrics scrape (all three processes)"
scrape "127.0.0.1:$P_DBG_CO" \
  'scc_decisions_logged_total [1-9]' \
  'scc_wire_frames_out_total [1-9]' \
  'scc_policy_tail_aborts_total{policy="depth=4"}'
scrape "127.0.0.1:$P_DBG_D0" 'scc_sched_executes_total{site="0"} [0-9]'
scrape "127.0.0.1:$P_DBG_D1" 'scc_sched_executes_total{site="2"} [0-9]'

# Now kill the coordinator the hard way.
kill -9 "$COORD_PID" 2>/dev/null || fail "coordinator already gone before kill"
echo "== coordinator killed (kill -9); flight-dumping the site daemons (SIGQUIT)"
# While the coordinator is dead, every hold the sites placed for it is
# in doubt. SIGQUIT makes each site daemon dump its flight recorder —
# the crash black box — and keep running; the dumps must contain an
# in-doubt transaction's partial causal trace: a sampled hold span with
# no matching release.
kill -QUIT "$SITE0_PID" 2>/dev/null || fail "site daemon 0 gone before SIGQUIT"
kill -QUIT "$SITE1_PID" 2>/dev/null || fail "site daemon 1 gone before SIGQUIT"
for _ in $(seq 1 50); do
  ls "$FLIGHT_DIR"/flight-site0-*.json >/dev/null 2>&1 \
    && ls "$FLIGHT_DIR"/flight-site1-*.json >/dev/null 2>&1 && break
  sleep 0.1
done
ls "$FLIGHT_DIR"/flight-site0-*.json >/dev/null 2>&1 || fail "site daemon 0 wrote no flight dump on SIGQUIT"
ls "$FLIGHT_DIR"/flight-site1-*.json >/dev/null 2>&1 || fail "site daemon 1 wrote no flight dump on SIGQUIT"
indoubt=""
for dump in "$FLIGHT_DIR"/flight-site*.json; do
  # The dump is indented JSON; compact it so the span fields sit on one
  # line for grep ("kind" directly precedes "txn" in a span record).
  compact=$(tr -d ' \n' < "$dump")
  echo "$compact" | grep -q '"trace":0,' && fail "flight dump $dump has an unsampled span (trace 0)"
  holds=$(echo "$compact" | grep -o '"kind":"hold","txn":[0-9]*' | grep -o '[0-9]*$' | sort -u)
  rels=$(echo "$compact" | grep -o '"kind":"release","txn":[0-9]*' | grep -o '[0-9]*$' | sort -u)
  orphan=$(comm -23 <(echo "$holds") <(echo "$rels") | head -1)
  if [ -n "$orphan" ]; then
    indoubt="$orphan"
    echo "flight dump $(basename "$dump"): in-doubt txn $orphan (hold span, no release)"
  fi
done
[ -n "$indoubt" ] || fail "no flight dump shows an in-doubt partial trace (hold without release)"
if [ -n "${FLIGHT_OUT:-}" ]; then
  mkdir -p "$FLIGHT_OUT"
  cp "$FLIGHT_DIR"/flight-*.json "$FLIGHT_OUT"/ 2>/dev/null || true
  echo "flight dumps copied to $FLIGHT_OUT"
fi

echo "== restarting coordinator on the same decision log"
sleep 0.5
"$BIN/sccd" -config "$CFG" -role coord > "$LOG/coord2.log" 2>&1 &
PIDS+=($!)

echo "== waiting for load to complete"
# Bounded wait: a wedged load must fail fast with goroutine dumps in
# the log, not hang the whole CI job. SIGQUIT makes the Go runtime
# print all stacks before exiting.
DEADLINE=${SMOKE_LOAD_TIMEOUT:-120}
waited=0
while kill -0 "$LOAD_PID" 2>/dev/null; do
  if [ "$waited" -ge "$DEADLINE" ]; then
    kill -QUIT "$LOAD_PID" 2>/dev/null || true
    sleep 2
    echo "---- load log (stalled, goroutine dump below) ----" >&2
    cat "$LOG/load.log" >&2 2>/dev/null || true
    fail "load still running after ${DEADLINE}s (stall; stacks above)"
  fi
  sleep 1
  waited=$((waited + 1))
done
if ! wait "$LOAD_PID"; then
  echo "---- load log ----" >&2; cat "$LOG/load.log" >&2 2>/dev/null || true
  fail "load did not survive the coordinator restart (see $LOG/load.log)"
fi
grep -q "conservation verified" "$LOG/load.log" || fail "load finished without verifying conservation"
cat "$LOG/load.log"

echo "== status after recovery"
"$BIN/sccctl" -config "$CFG" status || fail "status after recovery"

echo "== decision-log conservation at quiesce (/statusz)"
# Pull a named integer field out of the flat /statusz JSON; absent
# fields (omitempty) read as 0.
jint() {
  echo "$1" | grep -o "\"$2\": *-\{0,1\}[0-9]*" | grep -o -- '-\{0,1\}[0-9]*$' || echo 0
}
conserved=""
for _ in $(seq 1 100); do
  STATUS="$(curl -sf "http://127.0.0.1:$P_DBG_CO/statusz")" || fail "curl /statusz"
  logged=$(jint "$STATUS" decisions_logged)
  adopted=$(jint "$STATUS" decisions_adopted)
  resolved=$(jint "$STATUS" decisions_resolved)
  live=$(jint "$STATUS" live_decisions)
  if [ "$live" -eq 0 ] && [ $((logged + adopted)) -eq "$resolved" ]; then
    conserved=yes
    break
  fi
  sleep 0.1
done
[ -n "$conserved" ] \
  || fail "conservation violated at quiesce: logged=$logged adopted=$adopted resolved=$resolved live=$live"
# Adoption count depends on where the kill landed: usually > 0 (the
# load was mid-commit), but an empty gate at the kill instant is
# legal, so this is informational rather than an assertion.
[ "$adopted" -gt 0 ] || echo "note: no decisions were pending at the kill instant"
echo "$STATUS" | grep -q '"policy": "depth=4"' || fail "/statusz missing hold policy"
echo "$STATUS" | grep -q '"policy_stats"' || fail "/statusz missing policy_stats"
echo "conservation OK: logged=$logged adopted=$adopted resolved=$resolved live=$live"

echo "== sccctl stats / trace against the live cluster"
"$BIN/sccctl" -config "$CFG" stats > "$LOG/stats.log" 2>&1 || {
  cat "$LOG/stats.log" >&2; fail "sccctl stats"
}
grep -q 'commits' "$LOG/stats.log" || fail "sccctl stats printed no commit line"
"$BIN/sccctl" -config "$CFG" trace -last 5 > "$LOG/trace.log" 2>&1 || {
  cat "$LOG/trace.log" >&2; fail "sccctl trace"
}

echo "== /statusz reports the tracing and flight-recorder planes"
echo "$STATUS" | grep -q '"tracing"' || fail "/statusz missing tracing block"
echo "$STATUS" | grep -q '"flight"' || fail "/statusz missing flight block"
echo "$STATUS" | grep -q '"sample_rate": *1' || fail "/statusz tracing block missing sample_rate"

echo "== cross-process span stitching (sccctl trace -txn)"
# Pick a recently committed transaction from site daemon 0's span feed
# (a release span means its real commit landed there), then ask sccctl
# to reconstruct its cluster-wide causal timeline: rows must come from
# both the coordinator and the site daemon, and the chain must end in
# a release.
TXN=$(curl -sf "http://127.0.0.1:$P_DBG_D0/tracez?fmt=spans" | tr -d ' \n' \
  | grep -o '"kind":"release","txn":[0-9]*' | tail -1 | grep -o '[0-9]*$') \
  || fail "no release span retained at site daemon 0"
[ -n "$TXN" ] || fail "could not pick a committed txn from site daemon 0's span feed"
"$BIN/sccctl" -config "$CFG" trace -txn "$TXN" > "$LOG/timeline.log" 2>&1 || {
  cat "$LOG/timeline.log" >&2; fail "sccctl trace -txn $TXN"
}
grep -q "span(s) across the cluster" "$LOG/timeline.log" || fail "timeline header missing"
grep -q ' coord ' "$LOG/timeline.log" || fail "timeline for txn $TXN has no coordinator spans"
grep -Eq ' site[01] ' "$LOG/timeline.log" || fail "timeline for txn $TXN has no site-daemon spans"
grep -q ' release ' "$LOG/timeline.log" || fail "timeline for txn $TXN never releases"
echo "timeline for txn $TXN stitched from coordinator + site daemon spans:"
head -5 "$LOG/timeline.log"

echo "== slowest traces and Chrome export (sccctl trace -slowest/-chrome)"
"$BIN/sccctl" -config "$CFG" trace -slowest 3 -chrome "$DIR/trace.json" > "$LOG/slowest.log" 2>&1 || {
  cat "$LOG/slowest.log" >&2; fail "sccctl trace -slowest"
}
grep -q 'slowest 3 of' "$LOG/slowest.log" || fail "slowest ranking missing"
grep -q '"traceEvents"' "$DIR/trace.json" || fail "Chrome trace export is not a trace_event document"
if [ -n "${FLIGHT_OUT:-}" ]; then
  cp "$DIR/trace.json" "$FLIGHT_OUT"/cluster-trace.json 2>/dev/null || true
fi

echo "== clean daemon shutdown via sccctl kill"
"$BIN/sccctl" -config "$CFG" kill -daemon 0 || fail "kill daemon 0"
"$BIN/sccctl" -config "$CFG" kill -daemon 1 || fail "kill daemon 1"

echo "SMOKE PASS"
