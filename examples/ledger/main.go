// Ledger: a long-lived auditor scans an account table (size, lookups)
// while tellers concurrently open accounts. Inserts do not commute with
// size — under commutativity-based locking every teller would stall
// behind the auditor until it commits. Under recoverability the
// relationship is asymmetric (Table VIII): insert is recoverable
// relative to size, so tellers proceed immediately with a commit
// dependency on the auditor; a size requested *after* an uncommitted
// insert, however, still blocks (size RR insert = No).
//
// The whole scenario is written once against the Store/Txn interfaces
// and then run twice: on a single-scheduler DB and on a 2-site
// distributed cluster — the point of the unified client API.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro"
)

const accounts = repro.ObjectID(1)

func runScenario(st repro.Store) {
	ctx := context.Background()
	if err := st.Register(accounts, repro.KTable{}, repro.KTableTable()); err != nil {
		log.Fatal(err)
	}

	// Seed two existing accounts through the managed Run loop.
	err := st.Run(ctx, func(t repro.Txn) error {
		for acct, balance := range map[int]int{101: 500, 102: 900} {
			if _, err := t.Do(accounts, repro.TableInsert(acct, balance)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// The auditor starts: it counts accounts and inspects balances,
	// staying open for a while (a long-lived read-mostly transaction) —
	// so it manages its own Txn instead of using Run.
	auditor := st.Begin()
	n, err := auditor.Do(accounts, repro.TableSize())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auditor: size -> %v\n", n)
	b1, err := auditor.Do(accounts, repro.TableLookup(101))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auditor: lookup(101) -> %v\n", b1)

	// Tellers open new accounts concurrently. None of them waits for
	// the auditor: insert is recoverable relative to size and lookup.
	var wg sync.WaitGroup
	tellers := make([]repro.Txn, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			acct := 200 + i
			start := time.Now()
			teller := st.Begin()
			if _, err := teller.Do(accounts, repro.TableInsert(acct, 100*(i+1))); err != nil {
				log.Fatalf("teller %d: %v", i, err)
			}
			status, err := teller.Commit()
			if err != nil {
				log.Fatalf("teller %d: %v", i, err)
			}
			tellers[i] = teller
			fmt.Printf("teller %d: opened account %d in %v -> %v\n", i, acct, time.Since(start).Round(time.Millisecond), status)
		}(i)
	}
	wg.Wait()

	pending := 0
	for _, teller := range tellers {
		select {
		case <-teller.Done():
		default:
			pending++
		}
	}
	fmt.Printf("%d of 3 tellers pseudo-committed behind the auditor (none waited)\n", pending)

	// The auditor's view stayed consistent throughout — its size
	// ignores the tellers' uncommitted inserts by construction, and a
	// re-read of a balance still agrees.
	b1b, err := auditor.Do(accounts, repro.TableLookup(101))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auditor: lookup(101) again -> %v (stable)\n", b1b)

	if _, err := auditor.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("auditor: committed; tellers' real commits cascade")
	for i, teller := range tellers {
		<-teller.Done()
		if err := teller.Err(); err != nil {
			log.Fatalf("teller %d: %v", i, err)
		}
	}

	stats := st.Stats()
	fmt.Printf("store stats: %d commits, %d pseudo-commits, %d commit-dep edges\n",
		stats.Commits, stats.PseudoCommits, stats.CommitDepEdges)
}

func main() {
	fmt.Println("=== single-scheduler DB ===")
	runScenario(repro.NewDB(repro.Options{}))

	fmt.Println("\n=== 2-site distributed cluster (same code) ===")
	cluster, err := repro.NewCluster(2, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	runScenario(cluster)
}
