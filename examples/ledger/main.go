// Ledger: a long-lived auditor scans an account table (size, lookups)
// while tellers concurrently open accounts. Inserts do not commute with
// size — under commutativity-based locking every teller would stall
// behind the auditor until it commits. Under recoverability the
// relationship is asymmetric (Table VIII): insert is recoverable
// relative to size, so tellers proceed immediately with a commit
// dependency on the auditor; a size requested *after* an uncommitted
// insert, however, still blocks (size RR insert = No).
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro"
)

const accounts = repro.ObjectID(1)

func main() {
	db := repro.NewDB(repro.Options{})
	if err := db.Register(accounts, repro.KTable{}, repro.KTableTable()); err != nil {
		log.Fatal(err)
	}

	// Seed two existing accounts.
	seed := db.Begin()
	for acct, balance := range map[int]int{101: 500, 102: 900} {
		if _, err := seed.Do(accounts, repro.TableInsert(acct, balance)); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := seed.Commit(); err != nil {
		log.Fatal(err)
	}

	// The auditor starts: it counts accounts and inspects balances,
	// staying open for a while (a long-lived read-mostly transaction).
	auditor := db.Begin()
	n, err := auditor.Do(accounts, repro.TableSize())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auditor: size -> %v\n", n)
	b1, err := auditor.Do(accounts, repro.TableLookup(101))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auditor: lookup(101) -> %v\n", b1)

	// Tellers open new accounts concurrently. None of them waits for
	// the auditor: insert is recoverable relative to size and lookup.
	var wg sync.WaitGroup
	statuses := make([]repro.CommitStatus, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			teller := db.Begin()
			acct := 200 + i
			start := time.Now()
			if _, err := teller.Do(accounts, repro.TableInsert(acct, 100*(i+1))); err != nil {
				log.Fatalf("teller %d: %v", i, err)
			}
			st, err := teller.Commit()
			if err != nil {
				log.Fatalf("teller %d: %v", i, err)
			}
			statuses[i] = st
			fmt.Printf("teller %d: opened account %d in %v -> %v\n", i, acct, time.Since(start).Round(time.Millisecond), st)
		}(i)
	}
	wg.Wait()

	pseudo := 0
	for _, st := range statuses {
		if st == repro.PseudoCommitted {
			pseudo++
		}
	}
	fmt.Printf("%d of 3 tellers pseudo-committed behind the auditor (none waited)\n", pseudo)

	// The auditor's view stayed consistent throughout — its size
	// ignores the tellers' uncommitted inserts by construction, and a
	// re-read of a balance still agrees.
	b1b, err := auditor.Do(accounts, repro.TableLookup(101))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auditor: lookup(101) again -> %v (stable)\n", b1b)

	if _, err := auditor.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("auditor: committed; tellers' real commits cascade")

	final, err := db.Scheduler().CommittedState(accounts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final ledger: %v\n", final)
}
