// Quickstart: the paper's headline example through the Store/Txn API.
// Two transactions push onto a shared stack. Pushes do not commute, so
// a commutativity-based scheduler would make the second transaction
// wait — but a push is recoverable relative to a push, so here both
// execute immediately and only the commit order is constrained.
//
// The recommended shape is Store.Run: write the transaction body as a
// function, return nil to commit (a pseudo-commit counts — it is a
// promise), return an error to abort; Run restarts the body on
// retryable aborts (deadlock, commit-dependency cycle) with backoff.
// The same code runs against a single-scheduler DB or a distributed
// cluster (repro.NewCluster) — Store is the one client API.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"repro"
)

func main() {
	ctx := context.Background()
	db := repro.NewDB(repro.Options{})
	const stack = repro.ObjectID(1)
	if err := db.Register(stack, repro.Stack{}, repro.StackTable()); err != nil {
		log.Fatal(err)
	}

	// Two explicit transactions, to show the interleaving Run would
	// hide: T1 pushes and stays open (a long-lived transaction).
	t1 := db.Begin()
	t2 := db.Begin()
	if _, err := t1.Do(stack, repro.Push(4)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("T1: push(4) executed")

	// T2's push does not commute with T1's uncommitted push, yet it
	// executes without waiting: it is recoverable, at the price of a
	// commit dependency T2 -> T1.
	if _, err := t2.Do(stack, repro.Push(2)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("T2: push(2) executed immediately (recoverable, commit dependency on T1)")

	// T2 finishes first. From T2's (user's) perspective it is done —
	// but durably committing before T1 would violate the dependency,
	// so the system pseudo-commits it (§4.3). Done reports the real
	// commit.
	status, err := t2.Commit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("T2: commit -> %v\n", status)

	// T1 commits; T2's real commit cascades automatically.
	if _, err := t1.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("T1: committed")
	<-t2.Done()
	if err := t2.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("T2: real commit landed (cascade)")

	final, err := db.Scheduler().CommittedState(stack)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final stack state: %v\n", final)

	// The recommended form: Store.Run wraps begin/commit/retry. This
	// body pushes twice; had the scheduler chosen it as a deadlock or
	// cycle victim, Run would have restarted it transparently.
	err = db.Run(ctx, func(t repro.Txn) error {
		for _, v := range []int{10, 20} {
			if _, err := t.Do(stack, repro.Push(v)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Run: pushed 10 and 20 in one managed transaction")

	// The other half of the story: aborts do not cascade. T3 pushes,
	// T4 pushes on top, T3 aborts — T4 still commits, and only T4's
	// element appears. Abort outcomes are typed: errors.Is picks the
	// class, errors.As the victim and reason.
	t3 := db.Begin()
	t4 := db.Begin()
	if _, err := t3.Do(stack, repro.Push(30)); err != nil {
		log.Fatal(err)
	}
	if _, err := t4.Do(stack, repro.Push(40)); err != nil {
		log.Fatal(err)
	}
	if err := t3.Abort(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("T3: aborted (after T4 pushed on top)")
	if status, err := t4.Commit(); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("T4: commit -> %v (no cascading abort)\n", status)
	}
	<-t3.Done()
	var ab *repro.ErrAborted
	if err := t3.Err(); errors.As(err, &ab) {
		fmt.Printf("T3's verdict is typed: txn=%d reason=%v retryable=%v\n", ab.Txn, ab.Reason, ab.Retryable())
	}

	final, err = db.Scheduler().CommittedState(stack)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final stack state: %v\n", final)
}
