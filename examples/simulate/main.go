// Simulate: a miniature of the paper's Figure 4 — throughput of the
// read/write model under commutativity vs recoverability across
// multiprogramming levels — small enough to finish in seconds. The full
// reproduction of every figure lives in cmd/sccbench.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	fmt.Println("mini Figure 4: read/write model, infinite resources")
	fmt.Println("mpl   commutativity tx/s   recoverability tx/s   improvement")

	for _, mpl := range []int{10, 25, 50, 100} {
		var tps [2]repro.Sample
		for i, pred := range []repro.Predicate{repro.PredCommutativity, repro.PredRecoverability} {
			cfg := repro.DefaultSimConfig(
				repro.ReadWriteWorkload{DBSize: 600, WriteProb: 0.3}, mpl, 42)
			cfg.Predicate = pred
			cfg.Terminals = 100
			cfg.Completions = 2000
			cfg.Warmup = 200
			runs, err := repro.SimulateRuns(cfg, 2)
			if err != nil {
				log.Fatal(err)
			}
			tp, err := repro.AggregateRuns(runs, "throughput")
			if err != nil {
				log.Fatal(err)
			}
			tps[i] = tp
		}
		impr := 0.0
		if tps[0].Mean > 0 {
			impr = 100 * (tps[1].Mean - tps[0].Mean) / tps[0].Mean
		}
		fmt.Printf("%-5d %-21s %-21s %+.1f%%\n", mpl, tps[0], tps[1], impr)
	}
	fmt.Println("\n(expected shape: recoverability at or above commutativity, gap widening with contention)")
}
