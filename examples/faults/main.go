// Faults: crash-stop fault tolerance on the §6 cluster. A two-site
// fault-tolerant cluster runs a bank-style scenario and a site is
// crashed at the three interesting moments:
//
//  1. mid-transaction — the in-flight transaction aborts with the
//     typed ErrSiteFailed (retryable) and its operations at the
//     surviving site are undone;
//  2. while a transaction is pseudo-committed-and-held with no commit
//     decision in the coordinator's log — presumed abort: the hold is
//     revoked everywhere and a restart finds nothing to redo;
//  3. after the commit decision is logged but before the release
//     reaches the site — the restarted site redoes the transaction
//     from its forced prepare record (logged outcomes are
//     re-released).
//
// Throughout, committed state survives every crash: the committed base
// is the site's simulated disk.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/adt"
	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fault"
)

func write(v int) adt.Op { return adt.Op{Name: adt.PageWrite, Arg: v, HasArg: true} }

func state(c *dist.Cluster, id core.ObjectID) string {
	st, err := c.Site(c.SiteOf(id)).CommittedState(id)
	if err != nil {
		return fmt.Sprintf("<%v>", err)
	}
	return fmt.Sprint(st)
}

func main() {
	cluster, err := dist.NewWithConfig(dist.Config{Sites: 2, FaultTolerant: true})
	if err != nil {
		log.Fatal(err)
	}
	// Object 1 lives at site 1, object 2 at site 0.
	for id := core.ObjectID(1); id <= 2; id++ {
		if err := cluster.Register(id, adt.Page{}, compat.PageTable()); err != nil {
			log.Fatal(err)
		}
	}

	// --- 1. crash mid-transaction ---
	t1 := cluster.Begin()
	if _, err := t1.Do(2, write(100)); err != nil { // site 0
		log.Fatal(err)
	}
	if _, err := t1.Do(1, write(200)); err != nil { // site 1
		log.Fatal(err)
	}
	if err := cluster.Crash(1); err != nil {
		log.Fatal(err)
	}
	_, err = t1.Do(2, write(101))
	fmt.Printf("Do after losing a participant: %v\n", err)
	fmt.Printf("  errors.Is(err, ErrSiteFailed) = %v (retryable)\n", errors.Is(err, core.ErrSiteFailed))
	fmt.Printf("  survivor rolled back: object 2 = %s\n", state(cluster, 2))
	if rep, err := cluster.Restart(1); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("  restart: redone=%v presumed-aborted=%v\n\n", rep.Redone, rep.PresumedAborted)
	}

	// --- 2. presumed abort of an unlogged hold ---
	a, b := cluster.Begin(), cluster.Begin()
	if _, err := a.Do(2, write(10)); err != nil { // site 0
		log.Fatal(err)
	}
	if _, err := b.Do(2, write(11)); err != nil { // dep B->A at site 0
		log.Fatal(err)
	}
	if _, err := b.Do(1, write(22)); err != nil { // site 1
		log.Fatal(err)
	}
	st, err := b.Commit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("B commits while depending on A: %v (held at both sites)\n", st)
	if err := cluster.Crash(1); err != nil {
		log.Fatal(err)
	}
	<-b.Done()
	fmt.Printf("  site 1 crashed before B's commit point: B ends %v\n", b.Err())
	if st, err := a.Commit(); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("  A (never touched site 1) commits: %v\n", st)
	}
	rep, err := cluster.Restart(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  restart: redone=%v presumed-aborted=%v — B's unlogged hold is discarded\n", rep.Redone, rep.PresumedAborted)
	fmt.Printf("  object 2 = %s (A's write), object 1 = %s (B's write gone)\n\n", state(cluster, 2), state(cluster, 1))

	// --- 3. redo of a logged commit ---
	x, y := cluster.Begin(), cluster.Begin()
	if _, err := x.Do(2, write(30)); err != nil { // site 0
		log.Fatal(err)
	}
	if _, err := y.Do(2, write(31)); err != nil { // dep Y->X at site 0
		log.Fatal(err)
	}
	if _, err := y.Do(1, write(44)); err != nil { // site 1
		log.Fatal(err)
	}
	if st, err := y.Commit(); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("Y commits while depending on X: %v\n", st)
	}
	// Site 1 dies silently (the fault layer is crashed directly,
	// bypassing the cluster's detection) — so when X's commit drains
	// Y's dependency the coordinator logs Y's commit and its release
	// simply skips the dead site.
	if err := cluster.Site(1).(*fault.Crashable).Crash(); err != nil {
		log.Fatal(err)
	}
	if st, err := x.Commit(); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("  X commits: %v -> Y's global dependency set drains\n", st)
	}
	<-y.Done()
	fmt.Printf("  Y's commit was logged before the crash was detected: Y ends err=%v\n", y.Err())
	rep, err = cluster.Restart(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  restart: redone=%v presumed-aborted=%v — the prepare record is replayed\n", rep.Redone, rep.PresumedAborted)
	fmt.Printf("  object 1 = %s (Y's write recovered), object 2 = %s\n", state(cluster, 1), state(cluster, 2))
}
