// Inventory: parameter-dependent conflicts on a set of stocked SKUs.
// The compatibility tables are parameter-aware (Yes-DP entries): a
// membership probe for a *different* SKU commutes with an uncommitted
// insert and runs immediately, while a probe for the *same* SKU is not
// recoverable (its answer would depend on whether the insert commits)
// and blocks until the restocking transaction finishes. The example
// also shows a deadlock being detected (as a typed, errors.Is-able
// ErrDeadlock) and its victim restarted, plus a context-cancelled probe
// withdrawing its blocked request without killing the transaction.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"repro"
)

const (
	skus   = repro.ObjectID(1)
	audits = repro.ObjectID(2)
)

func main() {
	db := repro.NewDB(repro.Options{})
	if err := db.Register(skus, repro.Set{}, repro.SetTable()); err != nil {
		log.Fatal(err)
	}
	if err := db.Register(audits, repro.Stack{}, repro.StackTable()); err != nil {
		log.Fatal(err)
	}

	// A restocker adds SKU 7 but hasn't committed yet.
	restocker := db.Begin()
	if _, err := restocker.Do(skus, repro.Insert(7)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("restocker: insert(7) uncommitted")

	// Shopper A probes a different SKU: commutes, answers at once.
	shopperA := db.Begin()
	ret, err := shopperA.Do(skus, repro.Member(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shopper A: member(3) -> %v (no waiting: different parameter commutes)\n", ret)
	if _, err := shopperA.Commit(); err != nil {
		log.Fatal(err)
	}

	// An impatient shopper probes SKU 7 — the very element in flight —
	// with a deadline. The probe blocks behind the uncommitted insert;
	// when the deadline fires, DoCtx withdraws the request from the
	// queue and the transaction stays alive for other work.
	impatient := db.Begin()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	if _, err := impatient.DoCtx(ctx, skus, repro.Member(7)); errors.Is(err, context.DeadlineExceeded) {
		fmt.Println("impatient shopper: member(7) timed out and was withdrawn (txn still live)")
	} else {
		log.Fatalf("impatient shopper: expected deadline, got %v", err)
	}
	cancel()
	if _, err := impatient.Do(skus, repro.Member(3)); err != nil {
		log.Fatal(err)
	}
	if _, err := impatient.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("impatient shopper: probed another SKU and committed after the timeout")

	// Shopper B probes SKU 7 with patience. That pair is not
	// recoverable, so B blocks until the restocker commits.
	shopperB := db.Begin()
	done := make(chan repro.Ret, 1)
	go func() {
		ret, err := shopperB.Do(skus, repro.Member(7))
		if err != nil {
			log.Fatalf("shopper B: %v", err)
		}
		done <- ret
	}()
	select {
	case <-done:
		log.Fatal("shopper B should have blocked behind the uncommitted insert(7)")
	case <-time.After(50 * time.Millisecond):
		fmt.Println("shopper B: member(7) blocked (same parameter conflicts)")
	}

	if _, err := restocker.Commit(); err != nil {
		log.Fatal(err)
	}
	ret = <-done
	fmt.Printf("shopper B: member(7) -> %v after restocker committed\n", ret)
	if _, err := shopperB.Commit(); err != nil {
		log.Fatal(err)
	}

	// Deadlock demonstration: two clerks each log an audit entry and
	// then probe what the other has in flight. The wait-for cycle is
	// detected at the second block and the victim aborted; the
	// surviving clerk proceeds. (pop after push conflicts on stacks;
	// member(x) after insert(x) conflicts on sets.)
	clerk1 := db.Begin()
	clerk2 := db.Begin()
	if _, err := clerk1.Do(audits, repro.Push(1)); err != nil {
		log.Fatal(err)
	}
	if _, err := clerk2.Do(skus, repro.Insert(9)); err != nil {
		log.Fatal(err)
	}
	wait1 := make(chan error, 1)
	go func() {
		_, err := clerk1.Do(skus, repro.Member(9)) // blocks on clerk2
		wait1 <- err
	}()
	time.Sleep(50 * time.Millisecond)
	_, err = clerk2.Do(audits, repro.Pop()) // closes the cycle
	if !errors.Is(err, repro.ErrDeadlock) {
		log.Fatalf("expected clerk 2 to be the deadlock victim, got %v", err)
	}
	var ab *repro.ErrAborted
	errors.As(err, &ab)
	fmt.Printf("clerk 2: aborted by deadlock detection (typed: reason=%v retryable=%v)\n", ab.Reason, ab.Retryable())
	if err := <-wait1; err != nil {
		log.Fatal(err)
	}
	fmt.Println("clerk 1: member(9) granted after the victim's insert was undone")
	if _, err := clerk1.Commit(); err != nil {
		log.Fatal(err)
	}

	// Victims restart as fresh transactions, exactly like the paper's
	// simulator does — Store.Run is that restart policy packaged up
	// (retryable aborts re-run the body with backoff).
	err = db.Run(context.Background(), func(t repro.Txn) error {
		if _, err := t.Do(skus, repro.Insert(9)); err != nil {
			return err
		}
		_, err := t.Do(audits, repro.Pop())
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("clerk 2 (restarted via Run): committed")

	stock, err := db.Scheduler().CommittedState(skus)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final stocked SKUs: %v\n", stock)
}
