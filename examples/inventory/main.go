// Inventory: parameter-dependent conflicts on a set of stocked SKUs.
// The compatibility tables are parameter-aware (Yes-DP entries): a
// membership probe for a *different* SKU commutes with an uncommitted
// insert and runs immediately, while a probe for the *same* SKU is not
// recoverable (its answer would depend on whether the insert commits)
// and blocks until the restocking transaction finishes. The example
// also shows a deadlock being detected and its victim restarted.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"repro"
)

const (
	skus   = repro.ObjectID(1)
	audits = repro.ObjectID(2)
)

func main() {
	db := repro.NewDB(repro.Options{})
	if err := db.Register(skus, repro.Set{}, repro.SetTable()); err != nil {
		log.Fatal(err)
	}
	if err := db.Register(audits, repro.Stack{}, repro.StackTable()); err != nil {
		log.Fatal(err)
	}

	// A restocker adds SKU 7 but hasn't committed yet.
	restocker := db.Begin()
	if _, err := restocker.Do(skus, repro.Insert(7)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("restocker: insert(7) uncommitted")

	// Shopper A probes a different SKU: commutes, answers at once.
	shopperA := db.Begin()
	ret, err := shopperA.Do(skus, repro.Member(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shopper A: member(3) -> %v (no waiting: different parameter commutes)\n", ret)
	if _, err := shopperA.Commit(); err != nil {
		log.Fatal(err)
	}

	// Shopper B probes SKU 7 — the very element in flight. That pair
	// is not recoverable, so B blocks until the restocker commits.
	shopperB := db.Begin()
	done := make(chan repro.Ret, 1)
	go func() {
		ret, err := shopperB.Do(skus, repro.Member(7))
		if err != nil {
			log.Fatalf("shopper B: %v", err)
		}
		done <- ret
	}()
	select {
	case <-done:
		log.Fatal("shopper B should have blocked behind the uncommitted insert(7)")
	case <-time.After(50 * time.Millisecond):
		fmt.Println("shopper B: member(7) blocked (same parameter conflicts)")
	}

	if _, err := restocker.Commit(); err != nil {
		log.Fatal(err)
	}
	ret = <-done
	fmt.Printf("shopper B: member(7) -> %v after restocker committed\n", ret)
	if _, err := shopperB.Commit(); err != nil {
		log.Fatal(err)
	}

	// Deadlock demonstration: two clerks each log an audit entry and
	// then probe what the other has in flight. The wait-for cycle is
	// detected at the second block and the victim aborted; the
	// surviving clerk proceeds. (pop after push conflicts on stacks;
	// member(x) after insert(x) conflicts on sets.)
	clerk1 := db.Begin()
	clerk2 := db.Begin()
	if _, err := clerk1.Do(audits, repro.Push(1)); err != nil {
		log.Fatal(err)
	}
	if _, err := clerk2.Do(skus, repro.Insert(9)); err != nil {
		log.Fatal(err)
	}
	wait1 := make(chan error, 1)
	go func() {
		_, err := clerk1.Do(skus, repro.Member(9)) // blocks on clerk2
		wait1 <- err
	}()
	time.Sleep(50 * time.Millisecond)
	_, err = clerk2.Do(audits, repro.Pop()) // closes the cycle
	if !errors.Is(err, repro.ErrTxnAborted) {
		log.Fatalf("expected clerk 2 to be the deadlock victim, got %v", err)
	}
	fmt.Printf("clerk 2: aborted by deadlock detection (%v)\n", err)
	if err := <-wait1; err != nil {
		log.Fatal(err)
	}
	fmt.Println("clerk 1: member(9) granted after the victim's insert was undone")
	if _, err := clerk1.Commit(); err != nil {
		log.Fatal(err)
	}

	// Victims restart as fresh transactions, exactly like the paper's
	// simulator does.
	retry := db.Begin()
	if _, err := retry.Do(skus, repro.Insert(9)); err != nil {
		log.Fatal(err)
	}
	if _, err := retry.Do(audits, repro.Pop()); err != nil {
		log.Fatal(err)
	}
	if _, err := retry.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("clerk 2 (restarted): committed")

	stock, err := db.Scheduler().CommittedState(skus)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final stocked SKUs: %v\n", stock)
}
