// Distributed: the §6 extension. Objects are partitioned across three
// sites; transactions span sites; commit dependencies collected at
// different sites are mirrored at the coordinator, which catches a
// cross-site cycle that no single site can see and runs the atomic
// commit conversation (pseudo-commit-and-hold everywhere, release when
// the global dependency set drains).
//
// This example uses the library's internal distributed package
// directly, since the distributed API is not part of the stable root
// facade.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/adt"
	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/dist"
)

func main() {
	cluster, err := dist.New(3, core.Options{}, dist.RouteByModulo(3), nil)
	if err != nil {
		log.Fatal(err)
	}
	// Objects 1..6: pages spread over the three sites (id mod 3).
	for id := core.ObjectID(1); id <= 6; id++ {
		if err := cluster.Register(id, adt.Page{}, compat.PageTable()); err != nil {
			log.Fatal(err)
		}
	}
	write := func(v int) adt.Op { return adt.Op{Name: adt.PageWrite, Arg: v, HasArg: true} }

	// --- cross-site pseudo-commit ---
	t1 := cluster.Begin()
	t2 := cluster.Begin()
	if _, err := t1.Do(1, write(10)); err != nil { // site 1
		log.Fatal(err)
	}
	if _, err := t2.Do(1, write(11)); err != nil { // dep T2->T1 at site 1
		log.Fatal(err)
	}
	if _, err := t2.Do(2, write(22)); err != nil { // site 2, clean
		log.Fatal(err)
	}
	st, err := t2.Commit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("T2 commit -> %v (held at every participant until T1 terminates)\n", st)
	if st, err := t1.Commit(); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("T1 commit -> %v\n", st)
	}
	<-t2.Done()
	if err := t2.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("T2 released: real commit landed at all sites")

	// --- a cycle only the coordinator can see ---
	a := cluster.Begin()
	b := cluster.Begin()
	if _, err := a.Do(4, write(40)); err != nil { // site 1
		log.Fatal(err)
	}
	if _, err := b.Do(5, write(50)); err != nil { // site 2
		log.Fatal(err)
	}
	if _, err := b.Do(4, write(41)); err != nil { // dep B->A at site 1
		log.Fatal(err)
	}
	fmt.Println("site 1 sees only B->A; site 2 sees nothing yet")
	_, err = a.Do(5, write(51)) // would add dep A->B at site 2: global cycle
	if !errors.Is(err, core.ErrTxnAborted) {
		log.Fatalf("expected the coordinator to abort A, got %v", err)
	}
	fmt.Printf("coordinator's mirrored graph caught the cross-site cycle: %v\n", err)
	if st, err := b.Commit(); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("B commits -> %v (A's writes were undone beneath it at every site)\n", st)
	}

	for id := core.ObjectID(4); id <= 5; id++ {
		s, err := cluster.Site(dist.SiteID(id % 3)).CommittedState(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("object %d final state: %v\n", id, s)
	}
}
