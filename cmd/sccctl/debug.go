package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// fetchJSON GETs a debug-plane endpoint and decodes the JSON body.
func fetchJSON(addr, path string, v any) error {
	cl := &http.Client{Timeout: 5 * time.Second}
	resp, err := cl.Get("http://" + addr + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s%s: %s", addr, path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// cmdStats pretty-prints cluster-wide telemetry scraped from every
// process's /statusz. Processes without a configured debug plane are
// reported and skipped.
func cmdStats(cf *wire.ClusterFile) {
	if cf.Debug == "" {
		fatal(fmt.Errorf("stats needs a coordinator debug address (\"debug\") in the cluster file"))
	}
	var st wire.Statusz
	if err := fetchJSON(cf.Debug, "/statusz", &st); err != nil {
		fatal(err)
	}
	fmt.Printf("coordinator (%s): policy=%s\n", cf.Debug, st.Policy)
	if s := st.Stats; s != nil {
		fmt.Printf("  sched: executes=%d blocks=%d grants=%d withdrawals=%d commits=%d pseudo=%d aborts=%d (deadlock=%d cycle=%d)\n",
			s.Executes, s.Blocks, s.Grants, s.Withdrawals, s.Commits, s.PseudoCommits,
			s.Aborts, s.DeadlockAborts, s.CycleAborts)
	}
	fmt.Printf("  commit: fast=%d conversations=%d sheds=%d held=%d (peak %d)\n",
		st.FastCommits, st.Conversations, st.Sheds, st.Held, st.HeldHigh)
	fmt.Printf("  decisions: logged=%d adopted=%d resolved=%d live=%d\n",
		st.DecisionsLogged, st.DecisionsAdopted, st.DecisionsResolved, st.LiveDecisions)
	fmt.Printf("  faults: crashes=%d restarts=%d  mirror-edges=%d  trace-events=%d\n",
		st.Crashes, st.Restarts, st.MirrorEdges, st.TraceLen)
	if ps := st.PolicyStats; ps != nil {
		fmt.Printf("  policy: tail-aborts=%d admission-rejects=%d eager-rounds=%d eager-released=%d held-peak=%d\n",
			ps.TailAborts, ps.AdmissionRejects, ps.EagerRounds, ps.EagerReleased, ps.HeldPeak)
	}
	if w := st.Wire; w != nil {
		fmt.Printf("  wire: out=%d frames/%d B in=%d frames/%d B reconnects=%d pipeline=%d (peak %d)\n",
			w.FramesOut, w.BytesOut, w.FramesIn, w.BytesIn, w.Reconnects, w.Pipeline, w.PipelineHigh)
	}
	printSiteStats(st.SiteStats)
	for i, d := range cf.Daemons {
		if d.Debug == "" {
			fmt.Printf("daemon %d (%s): no debug plane configured\n", i, d.Listen)
			continue
		}
		var ds wire.Statusz
		if err := fetchJSON(d.Debug, "/statusz", &ds); err != nil {
			fmt.Printf("daemon %d (%s): %v\n", i, d.Debug, err)
			continue
		}
		fmt.Printf("daemon %d (%s):\n", i, d.Debug)
		printSiteStats(ds.SiteStats)
	}
}

func printSiteStats(m map[string]core.Stats) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s := m[k]
		fmt.Printf("  site %s: executes=%d blocks=%d commits=%d pseudo=%d aborts=%d withdrawals=%d\n",
			k, s.Executes, s.Blocks, s.Commits, s.PseudoCommits, s.Aborts, s.Withdrawals)
	}
}

// cmdTrace drains the coordinator's conversation-event ring and prints
// it oldest-first.
func cmdTrace(cf *wire.ClusterFile, args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	last := fs.Int("last", 0, "print only the last N events (0 = all retained)")
	fs.Parse(args)
	if cf.Debug == "" {
		fatal(fmt.Errorf("trace needs a coordinator debug address (\"debug\") in the cluster file"))
	}
	var events []telemetry.Event
	if err := fetchJSON(cf.Debug, "/tracez", &events); err != nil {
		fatal(err)
	}
	if len(events) == 0 {
		fmt.Println("sccctl: trace ring is empty (is \"trace\" set in the cluster file?)")
		return
	}
	if *last > 0 && len(events) > *last {
		events = events[len(events)-*last:]
	}
	for _, e := range events {
		fmt.Printf("%12.3fms  #%-8d %-8s txn=%-6d site=%-3d arg=%d\n",
			float64(e.Nanos)/1e6, e.Seq, e.KindS, e.Txn, e.Site, e.Arg)
	}
}
