package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// fetchJSON GETs a debug-plane endpoint and decodes the JSON body.
func fetchJSON(addr, path string, v any) error {
	cl := &http.Client{Timeout: 5 * time.Second}
	resp, err := cl.Get("http://" + addr + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s%s: %s", addr, path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// cmdStats pretty-prints cluster-wide telemetry scraped from every
// process's /statusz. Processes without a configured debug plane are
// reported and skipped.
func cmdStats(cf *wire.ClusterFile) {
	if cf.Debug == "" {
		fatal(fmt.Errorf("stats needs a coordinator debug address (\"debug\") in the cluster file"))
	}
	var st wire.Statusz
	if err := fetchJSON(cf.Debug, "/statusz", &st); err != nil {
		fatal(err)
	}
	fmt.Printf("coordinator (%s): policy=%s\n", cf.Debug, st.Policy)
	if s := st.Stats; s != nil {
		fmt.Printf("  sched: executes=%d blocks=%d grants=%d withdrawals=%d commits=%d pseudo=%d aborts=%d (deadlock=%d cycle=%d)\n",
			s.Executes, s.Blocks, s.Grants, s.Withdrawals, s.Commits, s.PseudoCommits,
			s.Aborts, s.DeadlockAborts, s.CycleAborts)
	}
	fmt.Printf("  commit: fast=%d conversations=%d sheds=%d held=%d (peak %d)\n",
		st.FastCommits, st.Conversations, st.Sheds, st.Held, st.HeldHigh)
	fmt.Printf("  decisions: logged=%d adopted=%d resolved=%d live=%d\n",
		st.DecisionsLogged, st.DecisionsAdopted, st.DecisionsResolved, st.LiveDecisions)
	fmt.Printf("  faults: crashes=%d restarts=%d  mirror-edges=%d  trace-events=%d\n",
		st.Crashes, st.Restarts, st.MirrorEdges, st.TraceLen)
	if ps := st.PolicyStats; ps != nil {
		fmt.Printf("  policy: tail-aborts=%d admission-rejects=%d eager-rounds=%d eager-released=%d held-peak=%d\n",
			ps.TailAborts, ps.AdmissionRejects, ps.EagerRounds, ps.EagerReleased, ps.HeldPeak)
	}
	if w := st.Wire; w != nil {
		fmt.Printf("  wire: out=%d frames/%d B in=%d frames/%d B reconnects=%d pipeline=%d (peak %d)\n",
			w.FramesOut, w.BytesOut, w.FramesIn, w.BytesIn, w.Reconnects, w.Pipeline, w.PipelineHigh)
	}
	printSiteStats(st.SiteStats)
	for i, d := range cf.Daemons {
		if d.Debug == "" {
			fmt.Printf("daemon %d (%s): no debug plane configured\n", i, d.Listen)
			continue
		}
		var ds wire.Statusz
		if err := fetchJSON(d.Debug, "/statusz", &ds); err != nil {
			fmt.Printf("daemon %d (%s): %v\n", i, d.Debug, err)
			continue
		}
		fmt.Printf("daemon %d (%s):\n", i, d.Debug)
		printSiteStats(ds.SiteStats)
	}
}

func printSiteStats(m map[string]core.Stats) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s := m[k]
		fmt.Printf("  site %s: executes=%d blocks=%d commits=%d pseudo=%d aborts=%d withdrawals=%d\n",
			k, s.Executes, s.Blocks, s.Commits, s.PseudoCommits, s.Aborts, s.Withdrawals)
	}
}

// cmdTrace reads the cluster's tracing planes. Without span flags it
// drains the coordinator's conversation-event ring and prints it
// oldest-first; -txn/-slowest/-chrome switch to the causal span plane,
// scraping /tracez?fmt=spans from every process and stitching the
// records into cluster-wide traces by trace id.
func cmdTrace(cf *wire.ClusterFile, args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	last := fs.Int("last", 0, "print only the last N events (0 = all retained)")
	txn := fs.Uint64("txn", 0, "reconstruct one transaction's cluster-wide causal timeline")
	slowest := fs.Int("slowest", 0, "rank the N slowest traces still retained (tail exemplars survive wraparound)")
	chrome := fs.String("chrome", "", "write the merged cluster-wide spans as Chrome trace JSON to this file")
	fs.Parse(args)
	if cf.Debug == "" {
		fatal(fmt.Errorf("trace needs a coordinator debug address (\"debug\") in the cluster file"))
	}
	if *txn != 0 || *slowest > 0 || *chrome != "" {
		cmdTraceSpans(cf, *txn, *slowest, *chrome)
		return
	}
	var events []telemetry.Event
	if err := fetchJSON(cf.Debug, "/tracez", &events); err != nil {
		fatal(err)
	}
	if len(events) == 0 {
		fmt.Println("sccctl: trace ring is empty (is \"trace\" set in the cluster file?)")
		return
	}
	if *last > 0 && len(events) > *last {
		events = events[len(events)-*last:]
	}
	for _, e := range events {
		fmt.Printf("%12.3fms  #%-8d %-8s txn=%-6d site=%-3d arg=%d\n",
			float64(e.Nanos)/1e6, e.Seq, e.KindS, e.Txn, e.Site, e.Arg)
	}
}

// procSpan is one span record tagged with the process it came from.
type procSpan struct {
	proc string
	s    telemetry.Span
}

// gatherSpans scrapes every process's span feed. Processes without a
// debug plane (or unreachable ones — a killed coordinator, say) are
// reported and skipped; stitching works from whatever survives.
func gatherSpans(cf *wire.ClusterFile) ([]telemetry.SpanGroup, []procSpan) {
	type target struct{ name, addr string }
	targets := []target{{"coord", cf.Debug}}
	for i, d := range cf.Daemons {
		targets = append(targets, target{fmt.Sprintf("site%d", i), d.Debug})
	}
	var groups []telemetry.SpanGroup
	var all []procSpan
	for _, t := range targets {
		if t.addr == "" {
			fmt.Fprintf(os.Stderr, "sccctl: %s: no debug plane configured, skipping\n", t.name)
			continue
		}
		var doc wire.SpanzDoc
		if err := fetchJSON(t.addr, "/tracez?fmt=spans", &doc); err != nil {
			fmt.Fprintf(os.Stderr, "sccctl: %s (%s): %v, skipping\n", t.name, t.addr, err)
			continue
		}
		if doc.Process == "" {
			doc.Process = t.name
		}
		groups = append(groups, telemetry.SpanGroup{Process: doc.Process, Spans: doc.Spans})
		for _, s := range doc.Spans {
			all = append(all, procSpan{proc: doc.Process, s: s})
		}
	}
	return groups, all
}

// cmdTraceSpans is the span-plane side of cmdTrace.
func cmdTraceSpans(cf *wire.ClusterFile, txn uint64, slowest int, chrome string) {
	groups, all := gatherSpans(cf)
	if len(all) == 0 {
		fmt.Println("sccctl: no spans retained anywhere (is \"spans\" set in the cluster file?)")
		return
	}
	if chrome != "" {
		f, err := os.Create(chrome)
		if err != nil {
			fatal(err)
		}
		if err := telemetry.WriteChromeTraceGroups(f, groups); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		n := 0
		for _, g := range groups {
			n += len(g.Spans)
		}
		fmt.Printf("sccctl: wrote %d spans from %d process(es) to %s (open in chrome://tracing)\n",
			n, len(groups), chrome)
	}
	if txn != 0 {
		printTxnTimeline(all, txn)
	}
	if slowest > 0 {
		printSlowest(all, slowest)
	}
}

// printTxnTimeline reconstructs one transaction's causal timeline: the
// trace id is resolved from any process's spans for the transaction,
// then every span of that trace — across all processes — is ordered on
// the shared wall-clock axis.
func printTxnTimeline(all []procSpan, txn uint64) {
	var trace uint64
	for _, ps := range all {
		if ps.s.Txn == txn && ps.s.Trace != 0 {
			trace = ps.s.Trace
			break
		}
	}
	if trace == 0 {
		fmt.Printf("sccctl: no spans for txn %d (unsampled, or already overwritten in every ring)\n", txn)
		return
	}
	var spans []procSpan
	for _, ps := range all {
		if ps.s.Trace == trace {
			spans = append(spans, ps)
		}
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].s.Wall != spans[j].s.Wall {
			return spans[i].s.Wall < spans[j].s.Wall
		}
		return spans[i].s.ID < spans[j].s.ID
	})
	t0 := spans[0].s.Wall
	fmt.Printf("trace %016x (txn %d): %d span(s) across the cluster\n", trace, txn, len(spans))
	for _, ps := range spans {
		s := ps.s
		kind := s.KindS
		if kind == "" {
			kind = s.Kind.String()
		}
		line := fmt.Sprintf("%+12.3fms  %-8s %-8s txn=%-6d site=%-3d", float64(s.Wall-t0)/1e6, ps.proc, kind, s.Txn, s.Site)
		if s.Object != 0 {
			line += fmt.Sprintf(" obj=%d", s.Object)
		}
		if s.Wave != 0 {
			line += fmt.Sprintf(" wave=%d", s.Wave)
		}
		if s.Dur > 0 {
			line += fmt.Sprintf(" dur=%.3fms", float64(s.Dur)/1e6)
		}
		fmt.Println(line)
	}
}

// printSlowest ranks retained traces by observed wall span (first span
// start to last span end) and prints the top n.
func printSlowest(all []procSpan, n int) {
	type agg struct {
		trace      uint64
		txn        uint64
		start, end int64
		spans      int
	}
	byTrace := make(map[uint64]*agg)
	for _, ps := range all {
		s := ps.s
		if s.Trace == 0 {
			continue
		}
		a := byTrace[s.Trace]
		if a == nil {
			a = &agg{trace: s.Trace, txn: s.Txn, start: s.Wall, end: s.Wall}
			byTrace[s.Trace] = a
		}
		if s.Wall < a.start {
			a.start = s.Wall
		}
		if end := s.Wall + s.Dur; end > a.end {
			a.end = end
		}
		a.spans++
	}
	ranked := make([]*agg, 0, len(byTrace))
	for _, a := range byTrace {
		ranked = append(ranked, a)
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].end-ranked[i].start > ranked[j].end-ranked[j].start })
	if n > len(ranked) {
		n = len(ranked)
	}
	fmt.Printf("slowest %d of %d retained trace(s):\n", n, len(ranked))
	for _, a := range ranked[:n] {
		fmt.Printf("  trace %016x txn=%-6d span=%9.3fms spans=%d\n",
			a.trace, a.txn, float64(a.end-a.start)/1e6, a.spans)
	}
}
