// Command sccctl operates a running sccd cluster from the command
// line. All subcommands read the same JSON cluster file the daemons
// were started from:
//
//	sccctl -config cluster.json init              # wait until every process answers
//	sccctl -config cluster.json status            # site liveness, stats, decision-log depth
//	sccctl -config cluster.json load [flags]      # drive a closed-loop load through the client plane
//	sccctl -config cluster.json kill -daemon N    # ask one site daemon to exit
//	sccctl -config cluster.json stats             # cluster-wide telemetry from the debug planes
//	sccctl -config cluster.json trace [flags]     # drain the coordinator's conversation trace
//
// load drives workload.RunLoad against the coordinator over TCP with
// crash-tolerant retries, and with -verify checks conservation for
// stack workloads: every object's committed depth must equal its
// committed pushes — across site crashes and coordinator restarts.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
	"repro/internal/workload"
)

func main() {
	var (
		config = flag.String("config", "", "cluster description JSON (required)")
		wait   = flag.Duration("wait", 15*time.Second, "how long init/status wait for the coordinator")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: sccctl -config cluster.json [flags] init|status|load|kill [subcommand flags]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *config == "" || flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	cf, err := wire.LoadClusterFile(*config)
	if err != nil {
		fatal(err)
	}
	cmd, args := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "init":
		cmdInit(cf, *wait)
	case "status":
		cmdStatus(cf, *wait)
	case "load":
		cmdLoad(cf, *wait, args)
	case "kill":
		cmdKill(cf, args)
	case "stats":
		cmdStats(cf)
	case "trace":
		cmdTrace(cf, args)
	default:
		fatal(fmt.Errorf("unknown command %q", cmd))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sccctl:", err)
	os.Exit(1)
}

func dialCoord(cf *wire.ClusterFile, wait time.Duration) *wire.Client {
	cl, err := wire.Dial(cf.Client, wait)
	if err != nil {
		fatal(err)
	}
	return cl
}

// cmdInit waits until the whole cluster answers: every site daemon's
// participant plane and the coordinator's client plane, with every
// site up. It is the scripts' readiness barrier.
func cmdInit(cf *wire.ClusterFile, wait time.Duration) {
	for i, d := range cf.Daemons {
		if err := wire.PingDaemon(d.Listen, d.Sites[0], wait); err != nil {
			fatal(fmt.Errorf("daemon %d (%s): %w", i, d.Listen, err))
		}
	}
	cl := dialCoord(cf, wait)
	defer cl.Close()
	deadline := time.Now().Add(wait)
	for {
		down, _, _, err := cl.Status()
		if err == nil {
			allUp := true
			for _, d := range down {
				allUp = allUp && !d
			}
			if allUp {
				fmt.Printf("sccctl: cluster ready: %d daemons, %d sites, coordinator %s\n",
					len(cf.Daemons), cf.NumSites(), cf.Client)
				return
			}
		}
		if time.Now().After(deadline) {
			fatal(fmt.Errorf("cluster not ready after %v", wait))
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func cmdStatus(cf *wire.ClusterFile, wait time.Duration) {
	cl := dialCoord(cf, wait)
	defer cl.Close()
	down, st, logLen, err := cl.Status()
	if err != nil {
		fatal(err)
	}
	for sid, d := range down {
		state := "up"
		if d {
			state = "DOWN"
		}
		fmt.Printf("site %d: %s\n", sid, state)
	}
	fmt.Printf("commits=%d pseudo=%d aborts=%d deadlocks=%d cycles=%d\n",
		st.Commits, st.PseudoCommits, st.Aborts, st.DeadlockAborts, st.CycleAborts)
	fmt.Printf("decision log: %d live decision(s)\n", logLen)
}

// cmdLoad drives the configured workload through the client plane and
// reports throughput. MaxRestarts is set high and held aborts retry,
// so the load rides through site crashes and coordinator restarts; it
// fails only on non-retryable errors or verification.
func cmdLoad(cf *wire.ClusterFile, wait time.Duration, args []string) {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	var (
		workers = fs.Int("workers", 8, "concurrent load workers")
		txns    = fs.Int("txns", 100, "transactions per worker")
		minLen  = fs.Int("minlen", 2, "minimum transaction length")
		maxLen  = fs.Int("maxlen", 6, "maximum transaction length")
		seed    = fs.Int64("seed", 1, "workload seed")
		verify  = fs.Bool("verify", false, "verify conservation afterwards (stack workloads)")
	)
	fs.Parse(args)
	if cf.Workload == "" {
		fatal(fmt.Errorf("load needs a workload spec in the cluster file"))
	}
	gen, err := workload.ParseSpec(cf.Workload)
	if err != nil {
		fatal(err)
	}
	cl := dialCoord(cf, wait)
	defer cl.Close()

	var mu sync.Mutex
	counts := make(map[core.ObjectID]uint64)
	cfg := workload.LoadConfig{
		Workload:        gen,
		Workers:         *workers,
		TxnsPerWorker:   *txns,
		MinLength:       *minLen,
		MaxLength:       *maxLen,
		Seed:            *seed,
		MaxRestarts:     100000,
		RetryHeldAborts: true,
	}
	_, isPushes := gen.(workload.Pushes)
	if *verify {
		if !isPushes {
			fatal(fmt.Errorf("-verify needs a pushes workload (have %s)", gen.Name()))
		}
		cfg.OnCommitted = func(steps []workload.Step) {
			mu.Lock()
			for _, s := range steps {
				counts[s.Object]++
			}
			mu.Unlock()
		}
	}
	res, err := workload.RunLoad(cl, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("sccctl: load done: %s\n", res)
	if !*verify {
		return
	}
	bad := 0
	for obj := core.ObjectID(1); obj <= core.ObjectID(gen.Size()); obj++ {
		want := int(counts[obj])
		_, got, err := cl.StateLen(obj, true)
		if err != nil {
			// Never touched and never created: conserved iff no commits.
			if want == 0 {
				continue
			}
			fatal(fmt.Errorf("object %d: %w", obj, err))
		}
		if got != want {
			fmt.Fprintf(os.Stderr, "sccctl: object %d: committed depth %d, want %d pushes\n", obj, got, want)
			bad++
		}
	}
	if bad > 0 {
		fatal(fmt.Errorf("conservation FAILED for %d object(s)", bad))
	}
	fmt.Printf("sccctl: conservation verified across %d objects (%d committed pushes)\n",
		gen.Size(), total(counts))
}

func total(m map[core.ObjectID]uint64) (n uint64) {
	for _, v := range m {
		n += v
	}
	return n
}

func cmdKill(cf *wire.ClusterFile, args []string) {
	fs := flag.NewFlagSet("kill", flag.ExitOnError)
	daemon := fs.Int("daemon", -1, "index of the site daemon to stop")
	fs.Parse(args)
	if *daemon < 0 || *daemon >= len(cf.Daemons) {
		fatal(fmt.Errorf("-daemon %d out of range (cluster has %d daemons)", *daemon, len(cf.Daemons)))
	}
	addr := cf.Daemons[*daemon].Listen
	if err := wire.ShutdownDaemon(addr, 5*time.Second); err != nil {
		fatal(err)
	}
	fmt.Printf("sccctl: daemon %d (%s) asked to exit\n", *daemon, addr)
}
