// Command scctables prints the paper's compatibility tables (Tables
// I–VIII) in two forms — as published, and as re-derived from each data
// type's semantics via Definitions 1–2 — together with the simulation
// parameter tables (IX–X).
//
// Usage:
//
//	scctables           # Tables I-VIII, paper vs derived
//	scctables -params   # Tables IX-X only
package main

import (
	"flag"
	"fmt"

	"repro"
)

func main() {
	params := flag.Bool("params", false, "print only the simulation parameter tables (IX-X)")
	flag.Parse()

	if !*params {
		fmt.Print(repro.TablesReport())
	}
	fmt.Print(repro.ParametersReport())
}
