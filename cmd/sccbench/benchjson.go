package main

// Benchmark-comparison mode: parse two `go test -bench` output files
// (a before and an after, each ideally -count=10 or more) and emit a
// JSON report with per-benchmark mean/min/max and speedups — a
// dependency-free stand-in for benchstat that the repository's
// BENCH_*.json perf trajectory is recorded with. See docs/PERF.md for
// the workflow.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// benchSample is one parsed benchmark output line.
type benchSample struct {
	nsPerOp     float64
	bytesPerOp  float64
	allocsPerOp float64
	hasMem      bool
}

// benchStats summarises every sample of one benchmark on one side.
type benchStats struct {
	Runs        int      `json:"runs"`
	NsPerOpMean float64  `json:"ns_per_op_mean"`
	NsPerOpMin  float64  `json:"ns_per_op_min"`
	NsPerOpMax  float64  `json:"ns_per_op_max"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// benchComparison pairs one benchmark's before and after stats.
type benchComparison struct {
	Name    string      `json:"name"`
	Before  *benchStats `json:"before,omitempty"`
	After   *benchStats `json:"after,omitempty"`
	Speedup *float64    `json:"speedup,omitempty"` // before mean / after mean
}

// benchReport is the emitted document. Telemetry optionally carries a
// -telemetryout snapshot document from the run being recorded.
type benchReport struct {
	Note       string            `json:"note"`
	BeforeFile string            `json:"before_file"`
	AfterFile  string            `json:"after_file"`
	Benchmarks []benchComparison `json:"benchmarks"`
	Telemetry  json.RawMessage   `json:"telemetry,omitempty"`
}

// parseBenchFile collects samples per benchmark name from `go test
// -bench` output. The trailing -N GOMAXPROCS suffix is stripped so
// runs from different machines compare.
func parseBenchFile(path string) (map[string][]benchSample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string][]benchSample)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		name, sample, ok := parseBenchLine(sc.Text())
		if !ok {
			continue
		}
		out[name] = append(out[name], sample)
	}
	return out, sc.Err()
}

// parseBenchLine parses one "BenchmarkX-8 1000 123 ns/op ..." line.
func parseBenchLine(line string) (string, benchSample, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", benchSample{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	var s benchSample
	found := false
	for i := 2; i+1 < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			s.nsPerOp, found = v, true
		case "B/op":
			s.bytesPerOp, s.hasMem = v, true
		case "allocs/op":
			s.allocsPerOp, s.hasMem = v, true
		}
	}
	return name, s, found
}

func summarise(samples []benchSample) *benchStats {
	if len(samples) == 0 {
		return nil
	}
	st := &benchStats{
		Runs:       len(samples),
		NsPerOpMin: math.Inf(1),
		NsPerOpMax: math.Inf(-1),
	}
	var sumNs, sumB, sumA float64
	memRuns := 0
	for _, s := range samples {
		sumNs += s.nsPerOp
		st.NsPerOpMin = math.Min(st.NsPerOpMin, s.nsPerOp)
		st.NsPerOpMax = math.Max(st.NsPerOpMax, s.nsPerOp)
		if s.hasMem {
			memRuns++
			sumB += s.bytesPerOp
			sumA += s.allocsPerOp
		}
	}
	st.NsPerOpMean = round3(sumNs / float64(len(samples)))
	st.NsPerOpMin = round3(st.NsPerOpMin)
	st.NsPerOpMax = round3(st.NsPerOpMax)
	if memRuns > 0 {
		b := round3(sumB / float64(memRuns))
		a := round3(sumA / float64(memRuns))
		st.BytesPerOp = &b
		st.AllocsPerOp = &a
	}
	return st
}

func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

// writeBenchComparison builds and writes the JSON report. telemetry,
// when non-empty, names a -telemetryout JSON file to embed verbatim.
func writeBenchComparison(w io.Writer, beforePath, afterPath, note, telemetry string) error {
	before, err := parseBenchFile(beforePath)
	if err != nil {
		return fmt.Errorf("parse -before: %w", err)
	}
	after, err := parseBenchFile(afterPath)
	if err != nil {
		return fmt.Errorf("parse -after: %w", err)
	}
	var telemRaw json.RawMessage
	if telemetry != "" {
		raw, err := os.ReadFile(telemetry)
		if err != nil {
			return fmt.Errorf("read -telemetryfile: %w", err)
		}
		if !json.Valid(raw) {
			return fmt.Errorf("-telemetryfile %s: not valid JSON", telemetry)
		}
		telemRaw = raw
	}
	names := make(map[string]bool)
	for n := range before {
		names[n] = true
	}
	for n := range after {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	rep := benchReport{Note: note, BeforeFile: beforePath, AfterFile: afterPath, Telemetry: telemRaw}
	for _, n := range sorted {
		c := benchComparison{
			Name:   n,
			Before: summarise(before[n]),
			After:  summarise(after[n]),
		}
		if c.Before != nil && c.After != nil && c.After.NsPerOpMean > 0 {
			sp := round3(c.Before.NsPerOpMean / c.After.NsPerOpMean)
			c.Speedup = &sp
		}
		rep.Benchmarks = append(rep.Benchmarks, c)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
