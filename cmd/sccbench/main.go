// Command sccbench regenerates the paper's evaluation: every figure
// (4–18) and the repository's ablations, printing the same series the
// paper plots.
//
// Usage:
//
//	sccbench -experiment fig4              # one figure, laptop scale
//	sccbench -all                          # the whole grid
//	sccbench -experiment fig14 -paper      # paper scale (50k × 10 runs)
//	sccbench -list                         # available experiments
//	sccbench -tables                       # Tables I–VIII and IX–X
//	sccbench -shardscale                   # 1-shard vs N-shard throughput
//	sccbench -net                          # loopback-TCP wire vs in-process calls
//	sccbench -chaos                        # crash-stop fault-tolerance cost + chaos run
//	sccbench -convoy                       # hold-convoy overload: policy off vs bounded-hold
//	sccbench -convoy -policy eager         # one policy against the unbounded baseline
//
// Scale knobs: -completions, -warmup, -runs, -seed, -db, -terminals.
// Shard-scaling knobs: -shards, -workers, -txns, -cross, -skew (zipfian
// hot keys) and -maxprocs (repeat the sweep at each GOMAXPROCS — the
// coordinator scaling matrix).
// Chaos knobs: -chaossites, -crashperiod, -restartdelay (plus the
// shard-scaling workload knobs); the chaos run checks conservation
// across the injected failures and reports the fault-tolerance
// overhead on the no-crash path.
// Convoy knobs: -convoysites and -policy (plus -workers, -txns, -db,
// -cross, which default to the overload regime: all-push workload,
// small database, 40% cross-site); the clock stops only after every
// pseudo-commit promise is honoured, so txn/s is honest real-commit
// throughput, drain included. -policy also installs a bounded-hold
// policy on the -chaos and -net clusters.
// Net knobs: -net reuses the -shardscale sweep knobs (-shards,
// -workers, -txns, -cross) to compare loopback TCP against in-process
// calls; use -policy eager to keep the wire's longer overlap windows
// from convoying.
//
// Telemetry: -telemetry prints each cluster's final instrument-block
// snapshot (phase quantiles, wave shape, decision conservation) after
// its throughput line; -telemetryout collects the snapshots into a
// JSON file that -benchjson can embed with -telemetryfile.
//
// Profiling: -cpuprofile / -memprofile write pprof files for any mode,
// so perf work profiles the real workloads without editing code:
//
//	sccbench -experiment fig4 -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
//
// Benchmark comparison: -benchjson summarises two saved `go test
// -bench` outputs (see docs/PERF.md) into the BENCH_*.json format the
// repository records its perf trajectory with:
//
//	go test -run xxx -bench . -benchmem -count=10 . > after.txt
//	sccbench -benchjson -before before.txt -after after.txt > BENCH_1.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/wire"
	"repro/internal/workload"
)

// parseIntList parses a comma-separated list of positive ints.
func parseIntList(flagName, list string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad %s list: %w", flagName, err)
		}
		if n <= 0 {
			return nil, fmt.Errorf("bad %s list: counts must be positive, got %d", flagName, n)
		}
		out = append(out, n)
	}
	return out, nil
}

// runShardScale sweeps cluster sizes over a sharded read/write
// workload and prints a throughput table: the §6 cluster doubling as a
// local sharding layer, 1 shard being the single-scheduler baseline.
// A non-empty maxprocsList repeats the sweep at each GOMAXPROCS value —
// the coordinator lock-split scaling matrix docs/PERF.md describes —
// and skew > 1 routes each partition's traffic zipfian-hot.
func runShardScale(shardList, maxprocsList string, workers, txns, db int, cross, skew float64, seed int64) error {
	counts, err := parseIntList("-shards", shardList)
	if err != nil {
		return err
	}
	procs := []int{runtime.GOMAXPROCS(0)}
	if maxprocsList != "" {
		if procs, err = parseIntList("-maxprocs", maxprocsList); err != nil {
			return err
		}
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	}
	fmt.Printf("shard scaling: %d workers x %d txns, read/write db=%d, cross-site prob %.2f, skew %g\n",
		workers, txns, db, cross, skew)
	for _, p := range procs {
		if maxprocsList != "" {
			runtime.GOMAXPROCS(p)
			fmt.Printf("GOMAXPROCS=%d\n", p)
		}
		fmt.Printf("%-8s %12s %12s %10s %10s %12s\n", "shards", "txn/s", "ops", "held", "aborts", "elapsed")
		var baseline float64
		for _, n := range counts {
			c, err := dist.New(n, core.Options{}, dist.RouteByModulo(n), nil)
			if err != nil {
				return err
			}
			res, err := dist.RunLoad(c, dist.LoadConfig{
				Workload: workload.Sharded{
					Inner: workload.ReadWrite{DBSize: db, WriteProb: 0.3},
					Sites: n, CrossProb: cross, Skew: skew,
				},
				Workers:       workers,
				TxnsPerWorker: txns,
				Seed:          seed,
			})
			if err != nil {
				return err
			}
			speedup := ""
			if n == 1 {
				baseline = res.TxnPerSec
			} else if baseline > 0 {
				speedup = fmt.Sprintf("  (%.2fx vs 1 shard)", res.TxnPerSec/baseline)
			}
			fmt.Printf("%-8d %12.0f %12d %10d %10d %12s%s\n",
				n, res.TxnPerSec, res.Ops, res.Pseudo, res.Aborts,
				res.Elapsed.Round(time.Millisecond), speedup)
			emitTelemetry(fmt.Sprintf("shardscale/shards=%d", n), c)
		}
	}
	return nil
}

// runNet measures what the wire costs: the same closed-loop sharded
// conservation workload (all pushes) runs against an in-process
// fault-tolerant cluster and against the identical cluster deployed
// over loopback TCP — one site daemon serving every site
// (wire.ServeSites), a coordinator over remote participants
// (wire.StartCoordinator), and a client dialling the coordinator's
// client plane (wire.Dial). Both sides use crash-stop Crashable sites
// and an in-memory decision log, so the ratio isolates the transport:
// framing, the per-site FIFO workers, and two network hops per
// operation (client → coordinator → site). This is the number behind
// BENCH_4.json.
//
// An all-push workload with no hold policy convoys badly over the
// wire: round trips widen the overlap window, every overlap holds, and
// the end-of-run drain can dwarf the load itself (minutes for a
// seconds-long run, with huge run-to-run variance). -policy installs
// the same bounded-hold policy on both sides; the canonical BENCH_4
// numbers use -policy eager so the sweep measures the transport, not
// the convoy.
func runNet(shardList string, workers, txns, db int, cross float64, seed int64, pol dist.HoldPolicy) error {
	counts, err := parseIntList("-shards", shardList)
	if err != nil {
		return err
	}
	spec := fmt.Sprintf("pushes:%d", db)
	fmt.Printf("net transport: loopback TCP vs in-process, %d workers x %d txns, push db=%d, cross-site prob %.2f\n",
		workers, txns, db, cross)
	fmt.Println("(both clusters crash-stop fault-tolerant; the wire side adds the client plane, one site daemon, and 2 hops/op)")
	if pol != nil {
		fmt.Printf("bounded-hold policy %s installed on both sides\n", pol.Name())
	}
	fmt.Printf("%-8s %-14s %10s %10s %10s %12s\n", "shards", "transport", "txn/s", "ops", "aborts", "elapsed")
	for _, n := range counts {
		lc := workload.LoadConfig{
			Workload: workload.Sharded{
				Inner: workload.Pushes{DBSize: db},
				Sites: n, CrossProb: cross,
			},
			Workers:         workers,
			TxnsPerWorker:   txns,
			Seed:            seed,
			MaxRestarts:     100000,
			RetryHeldAborts: true,
		}

		inproc, err := dist.NewWithConfig(dist.Config{Sites: n, FaultTolerant: true, Policy: pol})
		if err != nil {
			return err
		}
		inRes, err := workload.RunLoad(inproc, lc)
		if err != nil {
			return err
		}
		fmt.Printf("%-8d %-14s %10.0f %10d %10d %12s\n",
			n, "in-process", inRes.TxnPerSec, inRes.Ops, inRes.Aborts,
			inRes.Elapsed.Round(time.Millisecond))
		emitTelemetry(fmt.Sprintf("net/in-process/shards=%d", n), inproc)

		netRes, err := runNetOnce(n, spec, lc, pol)
		if err != nil {
			return err
		}
		ratio := ""
		if inRes.TxnPerSec > 0 {
			ratio = fmt.Sprintf("  (%.2fx of in-process)", netRes.TxnPerSec/inRes.TxnPerSec)
		}
		fmt.Printf("%-8d %-14s %10.0f %10d %10d %12s%s\n",
			n, "loopback-tcp", netRes.TxnPerSec, netRes.Ops, netRes.Aborts,
			netRes.Elapsed.Round(time.Millisecond), ratio)
	}
	return nil
}

// runNetOnce deploys the loopback cluster — daemon, coordinator,
// client — runs the load through the client plane, and tears it down.
func runNetOnce(n int, spec string, lc workload.LoadConfig, pol dist.HoldPolicy) (workload.LoadResult, error) {
	sites := make(map[uint16]dist.SiteBackend, n)
	ids := make([]uint16, 0, n)
	for sid := 0; sid < n; sid++ {
		cr, err := fault.New(core.Options{}, fault.NewMemLog())
		if err != nil {
			return workload.LoadResult{}, err
		}
		sites[uint16(sid)] = cr
		ids = append(ids, uint16(sid))
	}
	srv, err := wire.ServeSites(wire.SiteServerConfig{Addr: "127.0.0.1:0", Sites: sites, Workload: spec})
	if err != nil {
		return workload.LoadResult{}, err
	}
	defer srv.Close()
	cc := wire.CoordinatorConfig{
		ClientAddr: "127.0.0.1:0",
		Daemons:    []wire.DaemonSpec{{Listen: srv.Addr(), Sites: ids}},
		Workload:   spec,
		DialWait:   5 * time.Second,
		Policy:     pol,
	}
	if telemetryOn {
		// Arm the span plane so the -telemetryout artifact carries the
		// causal traces behind the RTT tail; off by default so the
		// benchmark numbers measure the bare transport.
		cc.Spans = 1 << 14
		cc.SpanExemplars = 8
		cc.SampleSeed = lc.Seed
		cc.SampleRate = 1
	}
	co, err := wire.StartCoordinator(cc)
	if err != nil {
		return workload.LoadResult{}, err
	}
	defer co.Close()
	cl, err := wire.Dial(co.Addr(), 5*time.Second)
	if err != nil {
		return workload.LoadResult{}, err
	}
	defer cl.Close()
	res, err := workload.RunLoad(cl, lc)
	if err == nil {
		emitNetTelemetry(fmt.Sprintf("net/loopback-tcp/shards=%d", n), co)
	}
	return res, err
}

// runConvoy reproduces the hold-convoy overload under the wall clock
// and measures what a bounded-hold policy buys back. The workload is
// the Convoy scenario's shape — every operation a recoverable stack
// push, heavy cross-site traffic, a small hot database — driven with
// RetryHeldAborts, so shed holds are resubmitted like any retryable
// abort and a logical transaction counts only when its real commit
// lands. The clock stops after the last promise is honoured: the
// unbounded baseline pays its whole convoy drain inside the elapsed
// time, which is exactly the cost the policies exist to remove.
func runConvoy(sitesN, workers, txns, db int, cross float64, seed int64, holdOpen time.Duration, pol dist.HoldPolicy) error {
	policies := []dist.HoldPolicy{nil}
	if pol != nil {
		policies = append(policies, pol)
	} else {
		policies = append(policies,
			dist.DepthBound{Max: 16},
			dist.EagerRelease{},
			&dist.Admission{High: 32, Low: 16},
		)
	}
	gen := workload.Sharded{
		Inner: workload.Pushes{DBSize: db},
		Sites: sitesN, CrossProb: cross,
	}
	fmt.Printf("convoy overload: %d sites, %d workers x %d txns, push db=%d, cross-site prob %.2f, hold-open %s\n",
		sitesN, workers, txns, db, cross, holdOpen)
	fmt.Println("(txn/s counts real commits with every promise drained before the clock stops)")
	fmt.Printf("%-14s %10s %10s %10s %10s %12s %12s\n",
		"policy", "txn/s", "held", "heldpeak", "aborts", "shed", "elapsed")
	var baseline float64
	for _, p := range policies {
		c, err := dist.NewWithConfig(dist.Config{Sites: sitesN, Policy: p})
		if err != nil {
			return err
		}
		res, err := dist.RunLoad(c, dist.LoadConfig{
			Workload:        gen,
			Workers:         workers,
			TxnsPerWorker:   txns,
			Seed:            seed,
			MaxRestarts:     100000,
			RetryHeldAborts: true,
			HoldOpen:        holdOpen,
		})
		if err != nil {
			return err
		}
		ps := c.PolicyStats()
		name, note := "off", ""
		if p != nil {
			name = p.Name()
		}
		if p == nil {
			baseline = res.TxnPerSec
		} else if baseline > 0 {
			note = fmt.Sprintf("  (%.2fx vs off)", res.TxnPerSec/baseline)
		}
		shed := fmt.Sprintf("%d/%d", ps.TailAborts, ps.AdmissionRejects)
		if ps.EagerReleased > 0 {
			shed = fmt.Sprintf("eager %d/%d", ps.EagerRounds, ps.EagerReleased)
		}
		fmt.Printf("%-14s %10.0f %10d %10d %10d %12s %12s%s\n",
			name, res.TxnPerSec, res.Pseudo, ps.HeldPeak, res.Aborts, shed,
			res.Elapsed.Round(time.Millisecond), note)
		emitTelemetry("convoy/policy="+name, c)
	}
	return nil
}

// runChaos measures crash-stop fault tolerance: the same sharded
// conservation workload (all-push stacks) runs on a plain cluster, on
// a fault-tolerant cluster with no failures (the no-crash overhead of
// the decision log and prepare conversation, comparable against the
// BENCH_*.json trajectory), and on a fault-tolerant cluster under a
// periodic crash/restart schedule with conservation verified at the
// end.
func runChaos(shardsN, workers, txns, db int, cross float64, seed int64, crashPeriod, restartDelay time.Duration, pol dist.HoldPolicy) error {
	gen := workload.Sharded{
		Inner: workload.Pushes{DBSize: db},
		Sites: shardsN, CrossProb: cross,
	}
	lc := dist.LoadConfig{
		Workload:      gen,
		Workers:       workers,
		TxnsPerWorker: txns,
		Seed:          seed,
		MaxRestarts:   100000,
	}
	fmt.Printf("chaos: %d sites, %d workers x %d txns, push db=%d, cross-site prob %.2f\n",
		shardsN, workers, txns, db, cross)
	if pol != nil {
		fmt.Printf("bounded-hold policy %s installed on every cluster\n", pol.Name())
	}
	fmt.Printf("%-22s %12s %10s %10s %12s %10s\n", "configuration", "txn/s", "held", "aborts", "elapsed", "crashes")

	plain, err := dist.NewWithConfig(dist.Config{Sites: shardsN, Policy: pol})
	if err != nil {
		return err
	}
	plainRes, err := dist.RunLoad(plain, lc)
	if err != nil {
		return err
	}
	fmt.Printf("%-22s %12.0f %10d %10d %12s %10s\n", "plain",
		plainRes.TxnPerSec, plainRes.Pseudo, plainRes.Aborts, plainRes.Elapsed.Round(time.Millisecond), "-")
	emitTelemetry("chaos/plain", plain)

	ft, err := dist.NewWithConfig(dist.Config{Sites: shardsN, FaultTolerant: true, Policy: pol})
	if err != nil {
		return err
	}
	ftRes, err := dist.RunLoad(ft, lc)
	if err != nil {
		return err
	}
	overhead := ""
	if plainRes.TxnPerSec > 0 {
		overhead = fmt.Sprintf("  (%.1f%% vs plain)", 100*(plainRes.TxnPerSec-ftRes.TxnPerSec)/plainRes.TxnPerSec)
	}
	fmt.Printf("%-22s %12.0f %10d %10d %12s %10s%s\n", "fault-tolerant",
		ftRes.TxnPerSec, ftRes.Pseudo, ftRes.Aborts, ftRes.Elapsed.Round(time.Millisecond), "-", overhead)
	emitTelemetry("chaos/fault-tolerant", ft)

	chaosCluster, err := dist.NewWithConfig(dist.Config{Sites: shardsN, FaultTolerant: true, Policy: pol})
	if err != nil {
		return err
	}
	chaosRes, err := workload.RunChaos(chaosCluster, workload.ChaosConfig{
		Load:         lc,
		CrashEvery:   crashPeriod,
		RestartAfter: restartDelay,
		Deadline:     10 * time.Minute,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%-22s %12.0f %10d %10d %12s %10d  (heldaborts=%d)\n", "fault-tolerant+chaos",
		chaosRes.TxnPerSec, chaosRes.Pseudo, chaosRes.Aborts, chaosRes.Elapsed.Round(time.Millisecond),
		chaosRes.Crashes, chaosRes.HeldAborts)
	emitTelemetry("chaos/fault-tolerant+chaos", chaosCluster)

	// Conservation across failures: every committed push — and nothing
	// else — is in a committed stack.
	var want, got uint64
	for id := core.ObjectID(1); id <= core.ObjectID(db); id++ {
		want += chaosRes.CommittedSteps[id]
		st, err := chaosCluster.Site(chaosCluster.SiteOf(id)).CommittedState(id)
		if err != nil {
			if chaosRes.CommittedSteps[id] > 0 {
				return fmt.Errorf("conservation violated at object %d: %d committed pushes but no committed state (%v)",
					id, chaosRes.CommittedSteps[id], err)
			}
			continue // never touched, never materialised
		}
		depth := st.(*repro.StackState).Len()
		got += uint64(depth)
		if uint64(depth) != chaosRes.CommittedSteps[id] {
			return fmt.Errorf("conservation violated at object %d: committed depth %d, promised pushes %d",
				id, depth, chaosRes.CommittedSteps[id])
		}
	}
	fmt.Printf("conservation: %d committed pushes == %d committed stack cells across %d crashes\n",
		want, got, chaosRes.Crashes)
	return nil
}

func main() {
	var (
		experiment  = flag.String("experiment", "", "experiment id (fig4..fig18, ablation-*)")
		all         = flag.Bool("all", false, "run every experiment")
		list        = flag.Bool("list", false, "list experiments and exit")
		tables      = flag.Bool("tables", false, "print Tables I-VIII (paper vs derived) and IX-X, then exit")
		paper       = flag.Bool("paper", false, "paper scale: 50,000 completions x 10 runs per point")
		completions = flag.Int("completions", 0, "completions per run (default laptop scale: 4000)")
		warmup      = flag.Int("warmup", 0, "warm-up completions discarded (default: completions/10)")
		runs        = flag.Int("runs", 0, "runs averaged per point (default 3)")
		seed        = flag.Int64("seed", 0, "base RNG seed (default 1)")
		db          = flag.Int("db", 0, "database size in objects (default 1000)")
		terminals   = flag.Int("terminals", 0, "number of terminals (default 200)")

		shardScale = flag.Bool("shardscale", false, "run the 1-shard vs N-shard throughput comparison")
		shards     = flag.String("shards", "1,2,4,8", "comma-separated shard counts for -shardscale")
		workers    = flag.Int("workers", 16, "concurrent workers for -shardscale/-chaos")
		txns       = flag.Int("txns", 2000, "transactions per worker for -shardscale/-chaos")
		cross      = flag.Float64("cross", 0.1, "cross-site step probability for -shardscale/-chaos")
		skew       = flag.Float64("skew", 0, "zipfian key-popularity exponent for -shardscale (>1 enables hot keys)")
		maxprocs   = flag.String("maxprocs", "", "comma-separated GOMAXPROCS values to repeat the -shardscale sweep at (empty: current)")

		netMode = flag.Bool("net", false, "run the loopback-TCP vs in-process transport comparison over the -shards sweep")

		chaos        = flag.Bool("chaos", false, "measure crash-stop fault tolerance: plain vs fault-tolerant vs chaos (with conservation check)")
		chaosSites   = flag.Int("chaossites", 4, "participant sites for -chaos")
		crashPeriod  = flag.Duration("crashperiod", 10*time.Millisecond, "healthy interval before each injected crash for -chaos")
		restartDelay = flag.Duration("restartdelay", 3*time.Millisecond, "downtime per injected crash for -chaos")

		convoy      = flag.Bool("convoy", false, "run the hold-convoy overload: bounded-hold policies vs the unbounded baseline")
		convoySites = flag.Int("convoysites", 8, "participant sites for -convoy")
		holdOpen    = flag.Duration("holdopen", 300*time.Microsecond, "per-transaction open window before commit for -convoy (the overlap that forms the convoy)")
		policyStr   = flag.String("policy", "", "bounded-hold policy for -convoy/-chaos/-net: off, depth=N, eager, admit=N, admit=H/L (empty with -convoy compares off, depth=16, eager, admit=32/16)")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")

		benchjson  = flag.Bool("benchjson", false, "compare two saved `go test -bench` outputs as JSON")
		beforeTxt  = flag.String("before", "", "before-side bench output file for -benchjson")
		afterTxt   = flag.String("after", "", "after-side bench output file for -benchjson")
		benchNote  = flag.String("note", "", "free-form note embedded in the -benchjson report")
		telemFlag  = flag.Bool("telemetry", false, "print each cluster's final telemetry snapshot after its throughput line")
		telemOut   = flag.String("telemetryout", "", "also collect -telemetry snapshots into this JSON file")
		telemEmbed = flag.String("telemetryfile", "", "-benchjson: embed a saved -telemetryout JSON document in the report")
	)
	flag.Parse()
	telemetryOn = *telemFlag
	telemetryOut = *telemOut
	defer flushTelemetry()

	pol, err := dist.ParsePolicy(*policyStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sccbench: %v\n", err)
		os.Exit(2)
	}
	flagSet := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { flagSet[f.Name] = true })

	if *benchjson {
		if *beforeTxt == "" || *afterTxt == "" {
			fmt.Fprintln(os.Stderr, "sccbench: -benchjson needs -before and -after files")
			os.Exit(2)
		}
		if err := writeBenchComparison(os.Stdout, *beforeTxt, *afterTxt, *benchNote, *telemEmbed); err != nil {
			fmt.Fprintf(os.Stderr, "sccbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sccbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "sccbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sccbench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "sccbench: -memprofile: %v\n", err)
			}
		}()
	}

	if *shardScale {
		dbSize := *db
		if dbSize == 0 {
			dbSize = 1000
		}
		seedVal := *seed
		if seedVal == 0 {
			seedVal = 1
		}
		if err := runShardScale(*shards, *maxprocs, *workers, *txns, dbSize, *cross, *skew, seedVal); err != nil {
			fmt.Fprintf(os.Stderr, "sccbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *netMode {
		// Wire round trips cost ~100x an in-process call, so the sweep
		// defaults to a shorter load than -shardscale. Explicit flags win.
		dbSize, txnsVal := *db, *txns
		if dbSize == 0 {
			dbSize = 256
		}
		if !flagSet["txns"] {
			txnsVal = 200
		}
		seedVal := *seed
		if seedVal == 0 {
			seedVal = 1
		}
		if err := runNet(*shards, *workers, txnsVal, dbSize, *cross, seedVal, pol); err != nil {
			fmt.Fprintf(os.Stderr, "sccbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *chaos {
		dbSize := *db
		if dbSize == 0 {
			dbSize = 1000
		}
		seedVal := *seed
		if seedVal == 0 {
			seedVal = 1
		}
		if err := runChaos(*chaosSites, *workers, *txns, dbSize, *cross, seedVal, *crashPeriod, *restartDelay, pol); err != nil {
			fmt.Fprintf(os.Stderr, "sccbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *convoy {
		// The overload regime's defaults differ from the shard-scaling
		// ones: a small all-push database, heavy cross-site traffic and
		// a load short enough that the baseline's convoy drain is
		// painful but not interminable. Explicit flags still win.
		dbSize, crossVal, txnsVal, workersVal := *db, *cross, *txns, *workers
		if dbSize == 0 {
			dbSize = 64
		}
		if !flagSet["cross"] {
			crossVal = 0.4
		}
		if !flagSet["txns"] {
			txnsVal = 60
		}
		if !flagSet["workers"] {
			workersVal = 24
		}
		seedVal := *seed
		if seedVal == 0 {
			seedVal = 1
		}
		if err := runConvoy(*convoySites, workersVal, txnsVal, dbSize, crossVal, seedVal, *holdOpen, pol); err != nil {
			fmt.Fprintf(os.Stderr, "sccbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, id := range repro.ExperimentIDs() {
			spec, _ := repro.LookupExperiment(id)
			fmt.Printf("%-22s %s\n", id, spec.Title)
		}
		return
	}
	if *tables {
		fmt.Print(repro.TablesReport())
		fmt.Print(repro.ParametersReport())
		return
	}

	opts := repro.DefaultExperimentOpts()
	if *paper {
		opts = repro.PaperExperimentOpts()
	}
	if *completions > 0 {
		opts.Completions = *completions
	}
	if *warmup > 0 {
		opts.Warmup = *warmup
	}
	if *runs > 0 {
		opts.Runs = *runs
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	if *db > 0 {
		opts.DBSize = *db
	}
	if *terminals > 0 {
		opts.Terminals = *terminals
	}

	var ids []string
	switch {
	case *all:
		ids = repro.ExperimentIDs()
	case *experiment != "":
		ids = []string{*experiment}
	default:
		fmt.Fprintln(os.Stderr, "sccbench: need -experiment <id>, -all, -list or -tables")
		flag.Usage()
		os.Exit(2)
	}

	for _, id := range ids {
		start := time.Now()
		res, err := repro.RunExperiment(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sccbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(res.Table())
		fmt.Printf("elapsed: %v\n\n", time.Since(start).Round(time.Millisecond))
	}
}
