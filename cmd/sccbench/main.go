// Command sccbench regenerates the paper's evaluation: every figure
// (4–18) and the repository's ablations, printing the same series the
// paper plots.
//
// Usage:
//
//	sccbench -experiment fig4              # one figure, laptop scale
//	sccbench -all                          # the whole grid
//	sccbench -experiment fig14 -paper      # paper scale (50k × 10 runs)
//	sccbench -list                         # available experiments
//	sccbench -tables                       # Tables I–VIII and IX–X
//
// Scale knobs: -completions, -warmup, -runs, -seed, -db, -terminals.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
)

func main() {
	var (
		experiment  = flag.String("experiment", "", "experiment id (fig4..fig18, ablation-*)")
		all         = flag.Bool("all", false, "run every experiment")
		list        = flag.Bool("list", false, "list experiments and exit")
		tables      = flag.Bool("tables", false, "print Tables I-VIII (paper vs derived) and IX-X, then exit")
		paper       = flag.Bool("paper", false, "paper scale: 50,000 completions x 10 runs per point")
		completions = flag.Int("completions", 0, "completions per run (default laptop scale: 4000)")
		warmup      = flag.Int("warmup", 0, "warm-up completions discarded (default: completions/10)")
		runs        = flag.Int("runs", 0, "runs averaged per point (default 3)")
		seed        = flag.Int64("seed", 0, "base RNG seed (default 1)")
		db          = flag.Int("db", 0, "database size in objects (default 1000)")
		terminals   = flag.Int("terminals", 0, "number of terminals (default 200)")
	)
	flag.Parse()

	if *list {
		for _, id := range repro.ExperimentIDs() {
			spec, _ := repro.LookupExperiment(id)
			fmt.Printf("%-22s %s\n", id, spec.Title)
		}
		return
	}
	if *tables {
		fmt.Print(repro.TablesReport())
		fmt.Print(repro.ParametersReport())
		return
	}

	opts := repro.DefaultExperimentOpts()
	if *paper {
		opts = repro.PaperExperimentOpts()
	}
	if *completions > 0 {
		opts.Completions = *completions
	}
	if *warmup > 0 {
		opts.Warmup = *warmup
	}
	if *runs > 0 {
		opts.Runs = *runs
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	if *db > 0 {
		opts.DBSize = *db
	}
	if *terminals > 0 {
		opts.Terminals = *terminals
	}

	var ids []string
	switch {
	case *all:
		ids = repro.ExperimentIDs()
	case *experiment != "":
		ids = []string{*experiment}
	default:
		fmt.Fprintln(os.Stderr, "sccbench: need -experiment <id>, -all, -list or -tables")
		flag.Usage()
		os.Exit(2)
	}

	for _, id := range ids {
		start := time.Now()
		res, err := repro.RunExperiment(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sccbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(res.Table())
		fmt.Printf("elapsed: %v\n\n", time.Since(start).Round(time.Millisecond))
	}
}
