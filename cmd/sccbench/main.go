// Command sccbench regenerates the paper's evaluation: every figure
// (4–18) and the repository's ablations, printing the same series the
// paper plots.
//
// Usage:
//
//	sccbench -experiment fig4              # one figure, laptop scale
//	sccbench -all                          # the whole grid
//	sccbench -experiment fig14 -paper      # paper scale (50k × 10 runs)
//	sccbench -list                         # available experiments
//	sccbench -tables                       # Tables I–VIII and IX–X
//	sccbench -shardscale                   # 1-shard vs N-shard throughput
//
// Scale knobs: -completions, -warmup, -runs, -seed, -db, -terminals.
// Shard-scaling knobs: -shards, -workers, -txns, -cross.
//
// Profiling: -cpuprofile / -memprofile write pprof files for any mode,
// so perf work profiles the real workloads without editing code:
//
//	sccbench -experiment fig4 -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
//
// Benchmark comparison: -benchjson summarises two saved `go test
// -bench` outputs (see docs/PERF.md) into the BENCH_*.json format the
// repository records its perf trajectory with:
//
//	go test -run xxx -bench . -benchmem -count=10 . > after.txt
//	sccbench -benchjson -before before.txt -after after.txt > BENCH_1.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/workload"
)

// runShardScale sweeps cluster sizes over a sharded read/write
// workload and prints a throughput table: the §6 cluster doubling as a
// local sharding layer, 1 shard being the single-scheduler baseline.
func runShardScale(shardList string, workers, txns, db int, cross float64, seed int64) error {
	var counts []int
	for _, f := range strings.Split(shardList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return fmt.Errorf("bad -shards list: %w", err)
		}
		if n <= 0 {
			return fmt.Errorf("bad -shards list: counts must be positive, got %d", n)
		}
		counts = append(counts, n)
	}
	fmt.Printf("shard scaling: %d workers x %d txns, read/write db=%d, cross-site prob %.2f\n",
		workers, txns, db, cross)
	fmt.Printf("%-8s %12s %12s %10s %10s %12s\n", "shards", "txn/s", "ops", "held", "aborts", "elapsed")
	var baseline float64
	for _, n := range counts {
		c, err := dist.New(n, core.Options{}, dist.RouteByModulo(n), nil)
		if err != nil {
			return err
		}
		res, err := dist.RunLoad(c, dist.LoadConfig{
			Workload: workload.Sharded{
				Inner: workload.ReadWrite{DBSize: db, WriteProb: 0.3},
				Sites: n, CrossProb: cross,
			},
			Workers:       workers,
			TxnsPerWorker: txns,
			Seed:          seed,
		})
		if err != nil {
			return err
		}
		speedup := ""
		if n == 1 {
			baseline = res.TxnPerSec
		} else if baseline > 0 {
			speedup = fmt.Sprintf("  (%.2fx vs 1 shard)", res.TxnPerSec/baseline)
		}
		fmt.Printf("%-8d %12.0f %12d %10d %10d %12s%s\n",
			n, res.TxnPerSec, res.Ops, res.Pseudo, res.Aborts,
			res.Elapsed.Round(time.Millisecond), speedup)
	}
	return nil
}

func main() {
	var (
		experiment  = flag.String("experiment", "", "experiment id (fig4..fig18, ablation-*)")
		all         = flag.Bool("all", false, "run every experiment")
		list        = flag.Bool("list", false, "list experiments and exit")
		tables      = flag.Bool("tables", false, "print Tables I-VIII (paper vs derived) and IX-X, then exit")
		paper       = flag.Bool("paper", false, "paper scale: 50,000 completions x 10 runs per point")
		completions = flag.Int("completions", 0, "completions per run (default laptop scale: 4000)")
		warmup      = flag.Int("warmup", 0, "warm-up completions discarded (default: completions/10)")
		runs        = flag.Int("runs", 0, "runs averaged per point (default 3)")
		seed        = flag.Int64("seed", 0, "base RNG seed (default 1)")
		db          = flag.Int("db", 0, "database size in objects (default 1000)")
		terminals   = flag.Int("terminals", 0, "number of terminals (default 200)")

		shardScale = flag.Bool("shardscale", false, "run the 1-shard vs N-shard throughput comparison")
		shards     = flag.String("shards", "1,2,4,8", "comma-separated shard counts for -shardscale")
		workers    = flag.Int("workers", 16, "concurrent workers for -shardscale")
		txns       = flag.Int("txns", 2000, "transactions per worker for -shardscale")
		cross      = flag.Float64("cross", 0.1, "cross-site step probability for -shardscale")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")

		benchjson = flag.Bool("benchjson", false, "compare two saved `go test -bench` outputs as JSON")
		beforeTxt = flag.String("before", "", "before-side bench output file for -benchjson")
		afterTxt  = flag.String("after", "", "after-side bench output file for -benchjson")
		benchNote = flag.String("note", "", "free-form note embedded in the -benchjson report")
	)
	flag.Parse()

	if *benchjson {
		if *beforeTxt == "" || *afterTxt == "" {
			fmt.Fprintln(os.Stderr, "sccbench: -benchjson needs -before and -after files")
			os.Exit(2)
		}
		if err := writeBenchComparison(os.Stdout, *beforeTxt, *afterTxt, *benchNote); err != nil {
			fmt.Fprintf(os.Stderr, "sccbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sccbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "sccbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sccbench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "sccbench: -memprofile: %v\n", err)
			}
		}()
	}

	if *shardScale {
		dbSize := *db
		if dbSize == 0 {
			dbSize = 1000
		}
		seedVal := *seed
		if seedVal == 0 {
			seedVal = 1
		}
		if err := runShardScale(*shards, *workers, *txns, dbSize, *cross, seedVal); err != nil {
			fmt.Fprintf(os.Stderr, "sccbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, id := range repro.ExperimentIDs() {
			spec, _ := repro.LookupExperiment(id)
			fmt.Printf("%-22s %s\n", id, spec.Title)
		}
		return
	}
	if *tables {
		fmt.Print(repro.TablesReport())
		fmt.Print(repro.ParametersReport())
		return
	}

	opts := repro.DefaultExperimentOpts()
	if *paper {
		opts = repro.PaperExperimentOpts()
	}
	if *completions > 0 {
		opts.Completions = *completions
	}
	if *warmup > 0 {
		opts.Warmup = *warmup
	}
	if *runs > 0 {
		opts.Runs = *runs
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	if *db > 0 {
		opts.DBSize = *db
	}
	if *terminals > 0 {
		opts.Terminals = *terminals
	}

	var ids []string
	switch {
	case *all:
		ids = repro.ExperimentIDs()
	case *experiment != "":
		ids = []string{*experiment}
	default:
		fmt.Fprintln(os.Stderr, "sccbench: need -experiment <id>, -all, -list or -tables")
		flag.Usage()
		os.Exit(2)
	}

	for _, id := range ids {
		start := time.Now()
		res, err := repro.RunExperiment(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sccbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(res.Table())
		fmt.Printf("elapsed: %v\n\n", time.Since(start).Round(time.Millisecond))
	}
}
