// Command sccbench regenerates the paper's evaluation: every figure
// (4–18) and the repository's ablations, printing the same series the
// paper plots.
//
// Usage:
//
//	sccbench -experiment fig4              # one figure, laptop scale
//	sccbench -all                          # the whole grid
//	sccbench -experiment fig14 -paper      # paper scale (50k × 10 runs)
//	sccbench -list                         # available experiments
//	sccbench -tables                       # Tables I–VIII and IX–X
//	sccbench -shardscale                   # 1-shard vs N-shard throughput
//	sccbench -chaos                        # crash-stop fault-tolerance cost + chaos run
//
// Scale knobs: -completions, -warmup, -runs, -seed, -db, -terminals.
// Shard-scaling knobs: -shards, -workers, -txns, -cross, -skew (zipfian
// hot keys) and -maxprocs (repeat the sweep at each GOMAXPROCS — the
// coordinator scaling matrix).
// Chaos knobs: -chaossites, -crashperiod, -restartdelay (plus the
// shard-scaling workload knobs); the chaos run checks conservation
// across the injected failures and reports the fault-tolerance
// overhead on the no-crash path.
//
// Profiling: -cpuprofile / -memprofile write pprof files for any mode,
// so perf work profiles the real workloads without editing code:
//
//	sccbench -experiment fig4 -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
//
// Benchmark comparison: -benchjson summarises two saved `go test
// -bench` outputs (see docs/PERF.md) into the BENCH_*.json format the
// repository records its perf trajectory with:
//
//	go test -run xxx -bench . -benchmem -count=10 . > after.txt
//	sccbench -benchjson -before before.txt -after after.txt > BENCH_1.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/workload"
)

// parseIntList parses a comma-separated list of positive ints.
func parseIntList(flagName, list string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad %s list: %w", flagName, err)
		}
		if n <= 0 {
			return nil, fmt.Errorf("bad %s list: counts must be positive, got %d", flagName, n)
		}
		out = append(out, n)
	}
	return out, nil
}

// runShardScale sweeps cluster sizes over a sharded read/write
// workload and prints a throughput table: the §6 cluster doubling as a
// local sharding layer, 1 shard being the single-scheduler baseline.
// A non-empty maxprocsList repeats the sweep at each GOMAXPROCS value —
// the coordinator lock-split scaling matrix docs/PERF.md describes —
// and skew > 1 routes each partition's traffic zipfian-hot.
func runShardScale(shardList, maxprocsList string, workers, txns, db int, cross, skew float64, seed int64) error {
	counts, err := parseIntList("-shards", shardList)
	if err != nil {
		return err
	}
	procs := []int{runtime.GOMAXPROCS(0)}
	if maxprocsList != "" {
		if procs, err = parseIntList("-maxprocs", maxprocsList); err != nil {
			return err
		}
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	}
	fmt.Printf("shard scaling: %d workers x %d txns, read/write db=%d, cross-site prob %.2f, skew %g\n",
		workers, txns, db, cross, skew)
	for _, p := range procs {
		if maxprocsList != "" {
			runtime.GOMAXPROCS(p)
			fmt.Printf("GOMAXPROCS=%d\n", p)
		}
		fmt.Printf("%-8s %12s %12s %10s %10s %12s\n", "shards", "txn/s", "ops", "held", "aborts", "elapsed")
		var baseline float64
		for _, n := range counts {
			c, err := dist.New(n, core.Options{}, dist.RouteByModulo(n), nil)
			if err != nil {
				return err
			}
			res, err := dist.RunLoad(c, dist.LoadConfig{
				Workload: workload.Sharded{
					Inner: workload.ReadWrite{DBSize: db, WriteProb: 0.3},
					Sites: n, CrossProb: cross, Skew: skew,
				},
				Workers:       workers,
				TxnsPerWorker: txns,
				Seed:          seed,
			})
			if err != nil {
				return err
			}
			speedup := ""
			if n == 1 {
				baseline = res.TxnPerSec
			} else if baseline > 0 {
				speedup = fmt.Sprintf("  (%.2fx vs 1 shard)", res.TxnPerSec/baseline)
			}
			fmt.Printf("%-8d %12.0f %12d %10d %10d %12s%s\n",
				n, res.TxnPerSec, res.Ops, res.Pseudo, res.Aborts,
				res.Elapsed.Round(time.Millisecond), speedup)
		}
	}
	return nil
}

// runChaos measures crash-stop fault tolerance: the same sharded
// conservation workload (all-push stacks) runs on a plain cluster, on
// a fault-tolerant cluster with no failures (the no-crash overhead of
// the decision log and prepare conversation, comparable against the
// BENCH_*.json trajectory), and on a fault-tolerant cluster under a
// periodic crash/restart schedule with conservation verified at the
// end.
func runChaos(shardsN, workers, txns, db int, cross float64, seed int64, crashPeriod, restartDelay time.Duration) error {
	gen := workload.Sharded{
		Inner: workload.Pushes{DBSize: db},
		Sites: shardsN, CrossProb: cross,
	}
	lc := dist.LoadConfig{
		Workload:      gen,
		Workers:       workers,
		TxnsPerWorker: txns,
		Seed:          seed,
		MaxRestarts:   100000,
	}
	fmt.Printf("chaos: %d sites, %d workers x %d txns, push db=%d, cross-site prob %.2f\n",
		shardsN, workers, txns, db, cross)
	fmt.Printf("%-22s %12s %10s %10s %12s %10s\n", "configuration", "txn/s", "held", "aborts", "elapsed", "crashes")

	plain, err := dist.New(shardsN, core.Options{}, nil, nil)
	if err != nil {
		return err
	}
	plainRes, err := dist.RunLoad(plain, lc)
	if err != nil {
		return err
	}
	fmt.Printf("%-22s %12.0f %10d %10d %12s %10s\n", "plain",
		plainRes.TxnPerSec, plainRes.Pseudo, plainRes.Aborts, plainRes.Elapsed.Round(time.Millisecond), "-")

	ft, err := dist.NewWithConfig(dist.Config{Sites: shardsN, FaultTolerant: true})
	if err != nil {
		return err
	}
	ftRes, err := dist.RunLoad(ft, lc)
	if err != nil {
		return err
	}
	overhead := ""
	if plainRes.TxnPerSec > 0 {
		overhead = fmt.Sprintf("  (%.1f%% vs plain)", 100*(plainRes.TxnPerSec-ftRes.TxnPerSec)/plainRes.TxnPerSec)
	}
	fmt.Printf("%-22s %12.0f %10d %10d %12s %10s%s\n", "fault-tolerant",
		ftRes.TxnPerSec, ftRes.Pseudo, ftRes.Aborts, ftRes.Elapsed.Round(time.Millisecond), "-", overhead)

	chaosCluster, err := dist.NewWithConfig(dist.Config{Sites: shardsN, FaultTolerant: true})
	if err != nil {
		return err
	}
	chaosRes, err := workload.RunChaos(chaosCluster, workload.ChaosConfig{
		Load:         lc,
		CrashEvery:   crashPeriod,
		RestartAfter: restartDelay,
		Deadline:     10 * time.Minute,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%-22s %12.0f %10d %10d %12s %10d  (heldaborts=%d)\n", "fault-tolerant+chaos",
		chaosRes.TxnPerSec, chaosRes.Pseudo, chaosRes.Aborts, chaosRes.Elapsed.Round(time.Millisecond),
		chaosRes.Crashes, chaosRes.HeldAborts)

	// Conservation across failures: every committed push — and nothing
	// else — is in a committed stack.
	var want, got uint64
	for id := core.ObjectID(1); id <= core.ObjectID(db); id++ {
		want += chaosRes.CommittedSteps[id]
		st, err := chaosCluster.Site(chaosCluster.SiteOf(id)).CommittedState(id)
		if err != nil {
			if chaosRes.CommittedSteps[id] > 0 {
				return fmt.Errorf("conservation violated at object %d: %d committed pushes but no committed state (%v)",
					id, chaosRes.CommittedSteps[id], err)
			}
			continue // never touched, never materialised
		}
		depth := st.(*repro.StackState).Len()
		got += uint64(depth)
		if uint64(depth) != chaosRes.CommittedSteps[id] {
			return fmt.Errorf("conservation violated at object %d: committed depth %d, promised pushes %d",
				id, depth, chaosRes.CommittedSteps[id])
		}
	}
	fmt.Printf("conservation: %d committed pushes == %d committed stack cells across %d crashes\n",
		want, got, chaosRes.Crashes)
	return nil
}

func main() {
	var (
		experiment  = flag.String("experiment", "", "experiment id (fig4..fig18, ablation-*)")
		all         = flag.Bool("all", false, "run every experiment")
		list        = flag.Bool("list", false, "list experiments and exit")
		tables      = flag.Bool("tables", false, "print Tables I-VIII (paper vs derived) and IX-X, then exit")
		paper       = flag.Bool("paper", false, "paper scale: 50,000 completions x 10 runs per point")
		completions = flag.Int("completions", 0, "completions per run (default laptop scale: 4000)")
		warmup      = flag.Int("warmup", 0, "warm-up completions discarded (default: completions/10)")
		runs        = flag.Int("runs", 0, "runs averaged per point (default 3)")
		seed        = flag.Int64("seed", 0, "base RNG seed (default 1)")
		db          = flag.Int("db", 0, "database size in objects (default 1000)")
		terminals   = flag.Int("terminals", 0, "number of terminals (default 200)")

		shardScale = flag.Bool("shardscale", false, "run the 1-shard vs N-shard throughput comparison")
		shards     = flag.String("shards", "1,2,4,8", "comma-separated shard counts for -shardscale")
		workers    = flag.Int("workers", 16, "concurrent workers for -shardscale/-chaos")
		txns       = flag.Int("txns", 2000, "transactions per worker for -shardscale/-chaos")
		cross      = flag.Float64("cross", 0.1, "cross-site step probability for -shardscale/-chaos")
		skew       = flag.Float64("skew", 0, "zipfian key-popularity exponent for -shardscale (>1 enables hot keys)")
		maxprocs   = flag.String("maxprocs", "", "comma-separated GOMAXPROCS values to repeat the -shardscale sweep at (empty: current)")

		chaos        = flag.Bool("chaos", false, "measure crash-stop fault tolerance: plain vs fault-tolerant vs chaos (with conservation check)")
		chaosSites   = flag.Int("chaossites", 4, "participant sites for -chaos")
		crashPeriod  = flag.Duration("crashperiod", 10*time.Millisecond, "healthy interval before each injected crash for -chaos")
		restartDelay = flag.Duration("restartdelay", 3*time.Millisecond, "downtime per injected crash for -chaos")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")

		benchjson = flag.Bool("benchjson", false, "compare two saved `go test -bench` outputs as JSON")
		beforeTxt = flag.String("before", "", "before-side bench output file for -benchjson")
		afterTxt  = flag.String("after", "", "after-side bench output file for -benchjson")
		benchNote = flag.String("note", "", "free-form note embedded in the -benchjson report")
	)
	flag.Parse()

	if *benchjson {
		if *beforeTxt == "" || *afterTxt == "" {
			fmt.Fprintln(os.Stderr, "sccbench: -benchjson needs -before and -after files")
			os.Exit(2)
		}
		if err := writeBenchComparison(os.Stdout, *beforeTxt, *afterTxt, *benchNote); err != nil {
			fmt.Fprintf(os.Stderr, "sccbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sccbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "sccbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sccbench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "sccbench: -memprofile: %v\n", err)
			}
		}()
	}

	if *shardScale {
		dbSize := *db
		if dbSize == 0 {
			dbSize = 1000
		}
		seedVal := *seed
		if seedVal == 0 {
			seedVal = 1
		}
		if err := runShardScale(*shards, *maxprocs, *workers, *txns, dbSize, *cross, *skew, seedVal); err != nil {
			fmt.Fprintf(os.Stderr, "sccbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *chaos {
		dbSize := *db
		if dbSize == 0 {
			dbSize = 1000
		}
		seedVal := *seed
		if seedVal == 0 {
			seedVal = 1
		}
		if err := runChaos(*chaosSites, *workers, *txns, dbSize, *cross, seedVal, *crashPeriod, *restartDelay); err != nil {
			fmt.Fprintf(os.Stderr, "sccbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, id := range repro.ExperimentIDs() {
			spec, _ := repro.LookupExperiment(id)
			fmt.Printf("%-22s %s\n", id, spec.Title)
		}
		return
	}
	if *tables {
		fmt.Print(repro.TablesReport())
		fmt.Print(repro.ParametersReport())
		return
	}

	opts := repro.DefaultExperimentOpts()
	if *paper {
		opts = repro.PaperExperimentOpts()
	}
	if *completions > 0 {
		opts.Completions = *completions
	}
	if *warmup > 0 {
		opts.Warmup = *warmup
	}
	if *runs > 0 {
		opts.Runs = *runs
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	if *db > 0 {
		opts.DBSize = *db
	}
	if *terminals > 0 {
		opts.Terminals = *terminals
	}

	var ids []string
	switch {
	case *all:
		ids = repro.ExperimentIDs()
	case *experiment != "":
		ids = []string{*experiment}
	default:
		fmt.Fprintln(os.Stderr, "sccbench: need -experiment <id>, -all, -list or -tables")
		flag.Usage()
		os.Exit(2)
	}

	for _, id := range ids {
		start := time.Now()
		res, err := repro.RunExperiment(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sccbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(res.Table())
		fmt.Printf("elapsed: %v\n\n", time.Since(start).Round(time.Millisecond))
	}
}
