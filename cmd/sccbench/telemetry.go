package main

// Telemetry snapshot mode: with -telemetry every cluster a benchmark
// mode builds prints its final instrument-block summary (phase
// quantiles, wave shape, decision-log conservation counters) after the
// throughput line, and -telemetryout additionally collects every
// summary into one JSON document — the same shape -benchjson can embed
// via -telemetryfile, so a BENCH_*.json record can carry the telemetry
// of the run that produced it.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/dist"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

var (
	telemetryOn  bool
	telemetryOut string
	telemetryLog []labelledTelemetry
)

// phaseSummary condenses one histogram into the quantiles the tables
// print (upper-bound estimates from power-of-two buckets).
type phaseSummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

func summarisePhase(h *telemetry.Histogram) phaseSummary {
	s := h.Snapshot()
	return phaseSummary{
		Count: s.Count,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P95:   s.Quantile(0.95),
		P99:   s.Quantile(0.99),
	}
}

// telemetrySummary is one cluster's final instrument-block snapshot.
type telemetrySummary struct {
	FastCommits   uint64 `json:"fast_commits"`
	Conversations uint64 `json:"conversations"`
	Sheds         uint64 `json:"sheds,omitempty"`
	HeldPeak      int64  `json:"held_peak"`

	HoldNanos    phaseSummary `json:"hold_nanos"`
	DecideNanos  phaseSummary `json:"decide_nanos"`
	ReleaseNanos phaseSummary `json:"release_nanos"`
	WaveSize     phaseSummary `json:"wave_size"`
	ReleaseWidth phaseSummary `json:"release_width"`

	DecisionsLogged   uint64 `json:"decisions_logged,omitempty"`
	DecisionsAdopted  uint64 `json:"decisions_adopted,omitempty"`
	DecisionsResolved uint64 `json:"decisions_resolved,omitempty"`
	LiveDecisions     int64  `json:"live_decisions,omitempty"`

	Crashes  uint64 `json:"crashes,omitempty"`
	Restarts uint64 `json:"restarts,omitempty"`
}

type labelledTelemetry struct {
	Label   string           `json:"label"`
	Summary telemetrySummary `json:"summary"`
	// WireRTT is the loopback side's per-verb round-trip histogram
	// family and SpanExemplars its slowest retained causal traces —
	// both only populated by -net, so one artifact carries transport
	// latency and the spans that explain its tail.
	WireRTT       []verbRTT                 `json:"wire_rtt,omitempty"`
	SpanExemplars []telemetry.TraceExemplar `json:"span_exemplars,omitempty"`
}

// verbRTT is one verb's round-trip summary.
type verbRTT struct {
	Verb string `json:"verb"`
	phaseSummary
}

func summariseTelemetry(c *dist.Cluster) telemetrySummary {
	tel := c.Telemetry()
	return telemetrySummary{
		FastCommits:       tel.FastCommits.Load(),
		Conversations:     tel.Conversations.Load(),
		Sheds:             tel.Sheds.Load(),
		HeldPeak:          tel.Held.High(),
		HoldNanos:         summarisePhase(&tel.HoldNanos),
		DecideNanos:       summarisePhase(&tel.DecideNanos),
		ReleaseNanos:      summarisePhase(&tel.ReleaseNanos),
		WaveSize:          summarisePhase(&tel.WaveSize),
		ReleaseWidth:      summarisePhase(&tel.ReleaseWidth),
		DecisionsLogged:   tel.DecisionsLogged.Load(),
		DecisionsAdopted:  tel.DecisionsAdopted.Load(),
		DecisionsResolved: tel.DecisionsResolved.Load(),
		LiveDecisions:     tel.LiveDecisions.Load(),
		Crashes:           tel.Crashes.Load(),
		Restarts:          tel.Restarts.Load(),
	}
}

// emitTelemetry prints (and with -telemetryout collects) one cluster's
// snapshot. A no-op unless -telemetry was given, so the benchmark
// tables stay unchanged by default.
func emitTelemetry(label string, c *dist.Cluster) {
	if !telemetryOn || c == nil {
		return
	}
	ts := summariseTelemetry(c)
	fmt.Printf("  telemetry[%s]: fast=%d conversations=%d sheds=%d heldpeak=%d\n",
		label, ts.FastCommits, ts.Conversations, ts.Sheds, ts.HeldPeak)
	for _, ph := range []struct {
		name string
		p    phaseSummary
	}{
		{"hold", ts.HoldNanos}, {"decide", ts.DecideNanos}, {"release", ts.ReleaseNanos},
	} {
		if ph.p.Count == 0 {
			continue
		}
		fmt.Printf("  telemetry[%s]: %-7s n=%-8d mean=%-10s p50<=%-10s p95<=%-10s p99<=%s\n",
			label, ph.name, ph.p.Count, ns(ph.p.Mean), ns(ph.p.P50), ns(ph.p.P95), ns(ph.p.P99))
	}
	if ts.WaveSize.Count > 0 {
		fmt.Printf("  telemetry[%s]: waves n=%d mean=%.1f p95<=%.0f; release-width mean=%.1f p95<=%.0f\n",
			label, ts.WaveSize.Count, ts.WaveSize.Mean, ts.WaveSize.P95,
			ts.ReleaseWidth.Mean, ts.ReleaseWidth.P95)
	}
	if ts.DecisionsLogged+ts.DecisionsAdopted > 0 {
		fmt.Printf("  telemetry[%s]: decisions logged=%d adopted=%d resolved=%d live=%d\n",
			label, ts.DecisionsLogged, ts.DecisionsAdopted, ts.DecisionsResolved, ts.LiveDecisions)
	}
	if telemetryOut != "" {
		telemetryLog = append(telemetryLog, labelledTelemetry{Label: label, Summary: ts})
	}
}

// emitNetTelemetry extends the loopback cluster's snapshot with the
// wire's per-verb RTT histograms and the span plane's tail exemplars,
// so the -telemetryout artifact ties transport latency to the causal
// traces behind its slowest transactions. A no-op unless -telemetry
// was given.
func emitNetTelemetry(label string, co *wire.Coordinator) {
	if !telemetryOn || co == nil {
		return
	}
	emitTelemetry(label, co.Cluster)
	var rtts []verbRTT
	co.WireMetrics().EachRTT(func(kind byte, s telemetry.HistSnapshot) {
		rtts = append(rtts, verbRTT{
			Verb: wire.KindName(kind),
			phaseSummary: phaseSummary{
				Count: s.Count,
				Mean:  s.Mean(),
				P50:   s.Quantile(0.50),
				P95:   s.Quantile(0.95),
				P99:   s.Quantile(0.99),
			},
		})
	})
	sort.Slice(rtts, func(i, j int) bool { return rtts[i].Verb < rtts[j].Verb })
	for _, r := range rtts {
		fmt.Printf("  telemetry[%s]: rtt %-12s n=%-8d mean=%-10s p50<=%-10s p95<=%-10s p99<=%s\n",
			label, r.Verb, r.Count, ns(r.Mean), ns(r.P50), ns(r.P95), ns(r.P99))
	}
	var exemplars []telemetry.TraceExemplar
	if sb := co.Cluster.Spans(); sb != nil {
		exemplars = sb.Exemplars()
		sort.Slice(exemplars, func(i, j int) bool { return exemplars[i].Latency > exemplars[j].Latency })
		for i, ex := range exemplars {
			if i >= 3 {
				break
			}
			fmt.Printf("  telemetry[%s]: slow-trace %016x txn=%d latency=%s spans=%d\n",
				label, ex.Trace, ex.Txn, ns(float64(ex.Latency)), len(ex.Spans))
		}
	}
	if telemetryOut != "" && (len(rtts) > 0 || len(exemplars) > 0) && len(telemetryLog) > 0 {
		last := &telemetryLog[len(telemetryLog)-1]
		if last.Label == label {
			last.WireRTT = rtts
			last.SpanExemplars = exemplars
		}
	}
}

// ns renders a nanosecond quantity human-readably.
func ns(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fs", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fms", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fus", v/1e3)
	}
	return fmt.Sprintf("%.0fns", v)
}

// flushTelemetry writes the collected summaries as JSON (deferred from
// main when -telemetryout is set).
func flushTelemetry() {
	if telemetryOut == "" || len(telemetryLog) == 0 {
		return
	}
	f, err := os.Create(telemetryOut)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sccbench: -telemetryout: %v\n", err)
		return
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(telemetryLog); err != nil {
		fmt.Fprintf(os.Stderr, "sccbench: -telemetryout: %v\n", err)
	}
}
