// Command sccsim runs a single simulation of the paper's closed queuing
// model with every knob exposed, printing all six §5.4 metrics.
//
// Examples:
//
//	sccsim -mpl 50                                  # RW model, defaults
//	sccsim -mpl 50 -predicate commutativity
//	sccsim -mpl 100 -resources 5 -writeprob 0.5
//	sccsim -model adt -pc 4 -pr 8 -mpl 50
//	sccsim -model mix -db 300 -unfair
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var (
		model       = flag.String("model", "rw", "workload model: rw, adt, mix")
		mpl         = flag.Int("mpl", 50, "multiprogramming level")
		db          = flag.Int("db", 1000, "database size (objects)")
		terminals   = flag.Int("terminals", 200, "number of terminals")
		writeProb   = flag.Float64("writeprob", 0.3, "write probability (rw model)")
		pc          = flag.Int("pc", 4, "commutative entries Pc (adt model)")
		pr          = flag.Int("pr", 4, "recoverable entries Pr (adt model)")
		resources   = flag.Int("resources", 0, "resource units (0 = infinite)")
		predicate   = flag.String("predicate", "recoverability", "conflict predicate: recoverability, commutativity")
		recovery    = flag.String("recovery", "intentions", "recovery strategy: intentions, undo")
		unfair      = flag.Bool("unfair", false, "disable fair scheduling")
		noPseudo    = flag.Bool("no-pseudo-commit", false, "defer completion to the real commit (ablation)")
		fakeRestart = flag.Bool("fake-restarts", false, "restarted transactions draw fresh operation sequences")
		completions = flag.Int("completions", 4000, "completions to measure")
		warmup      = flag.Int("warmup", 400, "warm-up completions discarded")
		runs        = flag.Int("runs", 1, "independent runs to average")
		seed        = flag.Int64("seed", 1, "RNG seed")
	)
	flag.Parse()

	var w repro.WorkloadGenerator
	switch *model {
	case "rw":
		w = repro.ReadWriteWorkload{DBSize: *db, WriteProb: *writeProb}
	case "adt":
		w = repro.AbstractWorkload{DBSize: *db, Sigma: 4, Pc: *pc, Pr: *pr, TableSeed: 7}
	case "mix":
		w = repro.MixWorkload{DBSize: *db, ArgRange: 8}
	default:
		fmt.Fprintf(os.Stderr, "sccsim: unknown model %q\n", *model)
		os.Exit(2)
	}

	cfg := repro.DefaultSimConfig(w, *mpl, *seed)
	cfg.Terminals = *terminals
	cfg.ResourceUnits = *resources
	cfg.Unfair = *unfair
	cfg.DisablePseudoCommit = *noPseudo
	cfg.FakeRestarts = *fakeRestart
	cfg.Completions = *completions
	cfg.Warmup = *warmup
	switch *predicate {
	case "recoverability":
		cfg.Predicate = repro.PredRecoverability
	case "commutativity":
		cfg.Predicate = repro.PredCommutativity
	default:
		fmt.Fprintf(os.Stderr, "sccsim: unknown predicate %q\n", *predicate)
		os.Exit(2)
	}
	switch *recovery {
	case "intentions":
		cfg.Recovery = repro.RecoveryIntentions
	case "undo":
		cfg.Recovery = repro.RecoveryUndo
	default:
		fmt.Fprintf(os.Stderr, "sccsim: unknown recovery %q\n", *recovery)
		os.Exit(2)
	}

	runsOut, err := repro.SimulateRuns(cfg, *runs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sccsim: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("workload=%s mpl=%d resources=%s predicate=%s fair=%v runs=%d completions=%d\n",
		w.Name(), *mpl, resourceLabel(*resources), *predicate, !*unfair, *runs, *completions)
	for _, m := range []string{"throughput", "response-time", "blocking-ratio", "restart-ratio", "cycle-check-ratio", "abort-length"} {
		s, err := repro.AggregateRuns(runsOut, m)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sccsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  %-18s %s\n", m, s)
	}
}

func resourceLabel(n int) string {
	if n == 0 {
		return "infinite"
	}
	return fmt.Sprintf("%d unit(s)", n)
}
