// Command sccsim runs the discrete-event simulations: the paper's §5
// single-site closed queuing model (the default), and the §6 multi-site
// cluster model (-sites > 0 or -scenario), which drives real per-site
// schedulers, the real coordinator commit conversation and the real
// decision log from a virtual clock, with seeded message latency and
// protocol-step crash injection.
//
// Single-site examples:
//
//	sccsim -mpl 50                                  # RW model, defaults
//	sccsim -mpl 50 -predicate commutativity
//	sccsim -mpl 100 -resources 5 -writeprob 0.5
//	sccsim -model adt -pc 4 -pr 8 -mpl 50
//	sccsim -model mix -db 300 -unfair
//
// Multi-site examples:
//
//	sccsim -sites 8 -terminals 32 -model pushes -cross 0.4    # convoy regime
//	sccsim -scenario convoy                                   # the checked-in collapse baseline
//	sccsim -scenario convoy -policy eager                     # bounded-hold policy vs the baseline
//	sccsim -scenario convoy -policy depth=16                  # shed the convoy tail past depth 16
//	sccsim -sites 2 -model pushes -cross 0.5 -completions 40 -warmup 0 \
//	    -crash-at AfterDecisionBeforeRelease -restart-after 0.5 -trace
//	sccsim -sites 200 -terminals 100 -model pushes -cross 0.2 -latency 0.01
//	sccsim -sites 8 -sweep-latency 0.002,0.01,0.05 -sweep-cross 0,0.2,0.4
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/dist"
	"repro/internal/distsim"
	"repro/internal/workload"
)

func main() {
	var (
		model       = flag.String("model", "rw", "workload model: rw, adt, mix, pushes")
		mpl         = flag.Int("mpl", 50, "multiprogramming level (single-site model)")
		db          = flag.Int("db", 1000, "database size (objects)")
		terminals   = flag.Int("terminals", 200, "number of terminals")
		writeProb   = flag.Float64("writeprob", 0.3, "write probability (rw model)")
		pc          = flag.Int("pc", 4, "commutative entries Pc (adt model)")
		pr          = flag.Int("pr", 4, "recoverable entries Pr (adt model)")
		resources   = flag.Int("resources", 0, "resource units (0 = infinite; single-site model)")
		predicate   = flag.String("predicate", "recoverability", "conflict predicate: recoverability, commutativity")
		recovery    = flag.String("recovery", "intentions", "recovery strategy: intentions, undo (single-site model)")
		unfair      = flag.Bool("unfair", false, "disable fair scheduling (single-site model)")
		noPseudo    = flag.Bool("no-pseudo-commit", false, "defer completion to the real commit (single-site ablation)")
		fakeRestart = flag.Bool("fake-restarts", false, "restarted transactions draw fresh operation sequences (single-site model)")
		completions = flag.Int("completions", 4000, "completions to measure")
		warmup      = flag.Int("warmup", 400, "warm-up completions discarded")
		runs        = flag.Int("runs", 1, "independent runs to average (single-site model)")
		seed        = flag.Int64("seed", 1, "RNG seed")

		// Multi-site (distsim) mode.
		sites        = flag.Int("sites", 0, "participant sites; > 0 selects the multi-site cluster simulation")
		cross        = flag.Float64("cross", 0.2, "per-step cross-site probability (multi-site)")
		latency      = flag.Float64("latency", 0.01, "mean one-way coordinator<->site message latency, seconds (multi-site)")
		jitter       = flag.Float64("jitter", 0.5, "latency jitter fraction in [0,1] (multi-site)")
		siteTime     = flag.Float64("sitetime", 0.005, "per-operation site service time, seconds (multi-site)")
		think        = flag.Float64("think", 0.1, "mean terminal think time, seconds (multi-site)")
		crashAt      = flag.String("crash-at", "", "crash on a protocol-step boundary: BeforeCommitHold, AfterPrepareForce, BeforeDecisionForce, AfterDecisionBeforeRelease, DuringReleaseCascade")
		crashNth     = flag.Int("crash-nth", 1, "which global occurrence of -crash-at to crash on")
		crashSite    = flag.Int("crash-site", -1, "site to crash (-1 = the step's own site)")
		restartAfter = flag.Float64("restart-after", 0.5, "virtual downtime before the crashed site restarts (<= 0: stays down until the run ends)")
		trace        = flag.Bool("trace", false, "print the full replayable event trace (multi-site)")
		scenario     = flag.String("scenario", "", "run a checked-in scenario: convoy, redo, presume")
		policy       = flag.String("policy", "", "bounded-hold policy: off, depth=N, eager, admit=N, admit=H/L (multi-site)")
		sweepLat     = flag.String("sweep-latency", "", "comma-separated latencies: sweep message latency x cross-site probability")
		sweepCross   = flag.String("sweep-cross", "", "comma-separated cross probabilities for the sweep (default 0,0.2,0.4)")
	)
	flag.Parse()

	if *scenario != "" || *sites > 0 || *sweepLat != "" || *sweepCross != "" {
		multiSite(*model, *db, *terminals, *writeProb, *pc, *pr, *predicate,
			*completions, *warmup, *seed, *sites, *cross, *latency, *jitter,
			*siteTime, *think, *crashAt, *crashNth, *crashSite, *restartAfter,
			*trace, *scenario, *policy, *sweepLat, *sweepCross)
		return
	}

	w := pickWorkload(*model, *db, *writeProb, *pc, *pr)
	cfg := repro.DefaultSimConfig(w, *mpl, *seed)
	cfg.Terminals = *terminals
	cfg.ResourceUnits = *resources
	cfg.Unfair = *unfair
	cfg.DisablePseudoCommit = *noPseudo
	cfg.FakeRestarts = *fakeRestart
	cfg.Completions = *completions
	cfg.Warmup = *warmup
	cfg.Predicate = parsePredicate(*predicate)
	switch *recovery {
	case "intentions":
		cfg.Recovery = repro.RecoveryIntentions
	case "undo":
		cfg.Recovery = repro.RecoveryUndo
	default:
		fatalf("unknown recovery %q", *recovery)
	}

	runsOut, err := repro.SimulateRuns(cfg, *runs)
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("workload=%s mpl=%d resources=%s predicate=%s fair=%v runs=%d completions=%d\n",
		w.Name(), *mpl, resourceLabel(*resources), *predicate, !*unfair, *runs, *completions)
	for _, m := range []string{"throughput", "response-time", "blocking-ratio", "restart-ratio", "cycle-check-ratio", "abort-length"} {
		s, err := repro.AggregateRuns(runsOut, m)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("  %-18s %s\n", m, s)
	}
}

// multiSite runs the deterministic cluster simulation.
func multiSite(model string, db, terminals int, writeProb float64, pc, pr int,
	predicate string, completions, warmup int, seed int64,
	sites int, cross, latency, jitter, siteTime, think float64,
	crashAt string, crashNth, crashSite int, restartAfter float64,
	trace bool, scenario, policy, sweepLat, sweepCross string) {

	pol, err := dist.ParsePolicy(policy)
	if err != nil {
		fatalf("%v", err)
	}

	var cfg distsim.Config
	switch scenario {
	case "convoy":
		cfg = distsim.Convoy(seed)
	case "redo":
		cfg = distsim.CrashRedo(seed)
	case "presume":
		cfg = distsim.CrashPresume(seed)
	case "":
		if sites <= 0 {
			sites = 4
		}
		inner := pickWorkload(model, db, writeProb, pc, pr)
		cfg = distsim.Default(workload.Sharded{Inner: inner, Sites: sites, CrossProb: cross}, sites, terminals, seed)
		cfg.MsgTime = latency
		cfg.MsgJitter = jitter
		cfg.SiteTime = siteTime
		cfg.ThinkTime = think
		cfg.Completions = completions
		cfg.Warmup = warmup
		cfg.Predicate = parsePredicate(predicate)
	default:
		fatalf("unknown scenario %q (convoy, redo, presume)", scenario)
	}
	if crashAt != "" {
		step, ok := dist.ParseStep(crashAt)
		if !ok {
			fatalf("unknown step %q", crashAt)
		}
		cfg.Crashes = append(cfg.Crashes, distsim.CrashPoint{
			Step: step, Occurrence: crashNth, Site: crashSite, RestartAfter: restartAfter,
		})
	}
	cfg.RecordTrace = trace
	cfg.Policy = pol

	if sweepCross != "" && sweepLat == "" {
		fatalf("-sweep-cross needs -sweep-latency (the sweep is a latency x cross grid)")
	}
	if sweepLat != "" {
		if crashAt != "" || trace || scenario != "" {
			fatalf("-sweep-latency runs its own scenario grid; it cannot combine with -crash-at, -trace or -scenario")
		}
		lats := parseFloats(sweepLat)
		crosses := parseFloats(sweepCross)
		if len(crosses) == 0 {
			crosses = []float64{0, 0.2, 0.4}
		}
		fmt.Printf("sweep sites=%d terminals=%d seed=%d (real/pseudo txn per simulated second, max convoy depth)\n",
			cfg.Sites, cfg.Terminals, seed)
		fmt.Printf("%10s", "lat\\cross")
		for _, cr := range crosses {
			fmt.Printf(" %18.2f", cr)
		}
		fmt.Println()
		for _, lat := range lats {
			fmt.Printf("%10.4f", lat)
			for _, cr := range crosses {
				c := distsim.SweepPoint(cfg.Sites, cfg.Terminals, lat, cr, seed)
				c.Policy = pol
				res := runSim(c)
				fmt.Printf(" %6.1f/%6.1f d=%-4d", res.RealThroughput(), res.PseudoThroughput(), res.ConvoyDepth.Max())
			}
			fmt.Println()
		}
		return
	}

	res := runSim(cfg)
	if trace {
		for _, line := range res.Trace {
			fmt.Println(line)
		}
	}
	fmt.Printf("multi-site simulation: sites=%d terminals=%d workload=%s seed=%d\n",
		cfg.Sites, cfg.Terminals, cfg.Workload.Name(), cfg.Seed)
	fmt.Printf("  sim-time           %.3f s (window)\n", res.SimTime)
	fmt.Printf("  real-throughput    %.1f txn/s (%d real commits)\n", res.RealThroughput(), res.RealCommits)
	fmt.Printf("  pseudo-throughput  %.1f txn/s (%d terminal completions)\n", res.PseudoThroughput(), res.PseudoCompletions)
	fmt.Printf("  aborts             %d (+%d revoked holds)\n", res.Aborts, res.HeldAborts)
	fmt.Printf("  held               %d conversations; convoy depth %s\n", res.Held, res.ConvoyDepth.String())
	fmt.Printf("  held-wait p99      %.4f s; time-to-drain %.3f s\n", res.HeldWaitP99, res.TimeToDrain)
	if res.Policy != "" {
		fmt.Printf("  policy             %s: shed %d tail + %d admission; eager released %d in %d rounds\n",
			res.Policy, res.TailAborts, res.AdmissionRejects, res.EagerReleased, res.EagerRounds)
	}
	fmt.Printf("  phase latency      exec %s\n", res.PhaseExec.String())
	fmt.Printf("                     hold %s\n", res.PhaseHold.String())
	fmt.Printf("                     held-wait %s\n", res.PhaseHeldWait.String())
	fmt.Printf("                     release %s\n", res.PhaseRelease.String())
	fmt.Printf("  crashes            %d (restarts %d, redone %d, presumed aborted %d)\n",
		res.Crashes, res.Restarts, res.Redone, res.PresumedAborted)
	fmt.Printf("  in-doubt windows   %s\n", res.InDoubt.String())
	fmt.Printf("  decision-log peak  %d live entries\n", res.LogHighWater)
	fmt.Printf("  trace              %d events, hash %016x\n", res.TraceLen, res.TraceHash)
}

// runSim builds and runs one engine.
func runSim(cfg distsim.Config) distsim.Result {
	eng, err := distsim.NewEngine(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	res, err := eng.Run()
	if err != nil {
		fatalf("%v", err)
	}
	return res
}

// pickWorkload builds the inner workload generator.
func pickWorkload(model string, db int, writeProb float64, pc, pr int) repro.WorkloadGenerator {
	switch model {
	case "rw":
		return repro.ReadWriteWorkload{DBSize: db, WriteProb: writeProb}
	case "adt":
		return repro.AbstractWorkload{DBSize: db, Sigma: 4, Pc: pc, Pr: pr, TableSeed: 7}
	case "mix":
		return repro.MixWorkload{DBSize: db, ArgRange: 8}
	case "pushes":
		return workload.Pushes{DBSize: db}
	default:
		fatalf("unknown model %q", model)
		return nil
	}
}

func parsePredicate(name string) repro.Predicate {
	switch name {
	case "recoverability":
		return repro.PredRecoverability
	case "commutativity":
		return repro.PredCommutativity
	}
	fatalf("unknown predicate %q", name)
	return 0
}

func parseFloats(s string) []float64 {
	if s == "" {
		return nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fatalf("bad float %q: %v", part, err)
		}
		out = append(out, v)
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sccsim: "+format+"\n", args...)
	os.Exit(2)
}

func resourceLabel(n int) string {
	if n == 0 {
		return "infinite"
	}
	return fmt.Sprintf("%d unit(s)", n)
}
