// Command sccd runs one process of a distributed SCC cluster: either a
// site daemon (a set of crash-tolerant participant sites behind the
// wire protocol) or the coordinator (the §6 commit-conversation
// coordinator over remote participants, with a durable decision log
// and a client-plane server).
//
// Both roles read the same JSON cluster file (see wire.ClusterFile):
//
//	sccd -config cluster.json -role site -daemon 0
//	sccd -config cluster.json -role coord
//
// A site daemon keeps its state across coordinator crashes: a new
// coordinator started on the same decision log adopts the daemons'
// surviving transactions and resolves them against the logged
// decisions (kill -9 the coordinator, restart it, and the cluster
// carries on). Killing a site daemon loses that daemon's volatile
// state, which is exactly the paper's crash-stop site failure; the
// coordinator presumed-aborts what the daemon held.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

func main() {
	var (
		config    = flag.String("config", "", "cluster description JSON (required)")
		role      = flag.String("role", "", "process role: site | coord")
		daemon    = flag.Int("daemon", -1, "site role: index into the cluster file's daemons list")
		dialWait  = flag.Duration("dialwait", 10*time.Second, "coord role: how long to wait for site daemons at startup")
		debugAddr = flag.String("debug-addr", "", "debug-plane HTTP listen address (overrides the cluster file; empty uses the file, \"off\" disables)")
	)
	flag.Parse()
	if *config == "" || *role == "" {
		flag.Usage()
		os.Exit(2)
	}
	cf, err := wire.LoadClusterFile(*config)
	if err != nil {
		fatal(err)
	}
	switch *role {
	case "site":
		runSite(cf, *daemon, *debugAddr)
	case "coord":
		runCoord(cf, *dialWait, *debugAddr)
	default:
		fatal(fmt.Errorf("unknown role %q (want site or coord)", *role))
	}
}

// pickDebugAddr resolves the debug-plane address from the flag
// override and the cluster-file default.
func pickDebugAddr(flagAddr, fileAddr string) string {
	switch flagAddr {
	case "":
		return fileAddr
	case "off":
		return ""
	}
	return flagAddr
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sccd:", err)
	os.Exit(1)
}

// buildFlight constructs the process's flight recorder from the
// cluster file (nil when disabled). process labels the dump files.
func buildFlight(cf *wire.ClusterFile, process string) *telemetry.FlightRecorder {
	if cf.Flight <= 0 {
		return nil
	}
	return telemetry.NewFlightRecorder(cf.Flight, process, cf.FlightDir)
}

// buildSpans constructs the process's span buffer from the cluster
// file (nil when the span plane is off).
func buildSpans(cf *wire.ClusterFile) *telemetry.SpanBuffer {
	if cf.Spans <= 0 {
		return nil
	}
	return telemetry.NewSpanBuffer(cf.Spans, cf.SpanExemplars)
}

// watchSignals blocks until SIGINT/SIGTERM arrives on quit (wire-level
// shutdown requests feed the same channel). SIGQUIT does not exit: it
// dumps the flight recorder — the live post-mortem hook — and the
// process carries on serving.
func watchSignals(quit chan os.Signal, fr *telemetry.FlightRecorder) {
	signal.Notify(quit, syscall.SIGINT, syscall.SIGTERM, syscall.SIGQUIT)
	for sig := range quit {
		if sig != syscall.SIGQUIT {
			return
		}
		if fr == nil {
			fmt.Fprintln(os.Stderr, "sccd: SIGQUIT but no flight recorder configured (\"flight\" in the cluster file)")
			continue
		}
		if path, err := fr.Dump("sigquit"); err != nil {
			fmt.Fprintln(os.Stderr, "sccd: flight dump failed:", err)
		} else {
			fmt.Printf("sccd: flight dump written to %s\n", path)
		}
	}
}

// runSite serves one daemon's sites until a signal or a wire-level
// shutdown request. Each site is a fault.Crashable with a private
// in-memory log: the daemon's recovery is driven by the coordinator's
// decision log at reconcile time, not replayed locally.
func runSite(cf *wire.ClusterFile, idx int, debugAddr string) {
	if idx < 0 || idx >= len(cf.Daemons) {
		fatal(fmt.Errorf("-daemon %d out of range (cluster has %d daemons)", idx, len(cf.Daemons)))
	}
	d := cf.Daemons[idx]
	sites := make(map[uint16]dist.SiteBackend, len(d.Sites))
	for _, sid := range d.Sites {
		cr, err := fault.New(core.Options{}, fault.NewMemLog())
		if err != nil {
			fatal(err)
		}
		sites[sid] = cr
	}
	process := fmt.Sprintf("site%d", idx)
	spans := buildSpans(cf)
	flight := buildFlight(cf, process)
	if flight != nil {
		flight.AttachSpans(spans)
	}
	quit := make(chan os.Signal, 1)
	srv, err := wire.ServeSites(wire.SiteServerConfig{
		Addr:       d.Listen,
		Sites:      sites,
		Workload:   cf.Workload,
		Spans:      spans,
		Flight:     flight,
		OnShutdown: func() { quit <- syscall.SIGTERM },
	})
	if err != nil {
		fatal(err)
	}
	if addr := pickDebugAddr(debugAddr, d.Debug); addr != "" {
		dbg, err := wire.ServeDebug(wire.DebugConfig{
			Addr:       addr,
			Role:       "site",
			Process:    process,
			Sites:      sites,
			Spans:      spans,
			Flight:     flight,
			SampleSeed: cf.SampleSeed,
			SampleRate: cf.SampleRate,
		})
		if err != nil {
			fatal(err)
		}
		defer dbg.Close()
		fmt.Printf("sccd: site daemon %d debug plane on http://%s\n", idx, dbg.Addr())
	}
	fmt.Printf("sccd: site daemon %d serving sites %v on %s\n", idx, d.Sites, srv.Addr())
	watchSignals(quit, flight)
	srv.Close()
}

// runCoord starts the coordinator: it opens (or re-opens) the decision
// log, adopts any logged commits a previous incarnation left behind,
// reconciles every reachable site daemon, and serves clients.
func runCoord(cf *wire.ClusterFile, dialWait time.Duration, debugAddr string) {
	if cf.Log == "" {
		fatal(fmt.Errorf("coord role needs a decision log path (\"log\")"))
	}
	policy, err := dist.ParsePolicy(cf.Policy)
	if err != nil {
		fatal(err)
	}
	flog, err := fault.OpenFileLog(cf.Log, cf.Sync)
	if err != nil {
		fatal(err)
	}
	flight := buildFlight(cf, "coord")
	co, err := wire.StartCoordinator(wire.CoordinatorConfig{
		ClientAddr:    cf.Client,
		Log:           flog,
		CloseLog:      flog.Close,
		Daemons:       cf.Daemons,
		Workload:      cf.Workload,
		DialWait:      dialWait,
		Policy:        policy,
		Trace:         cf.Trace,
		Spans:         cf.Spans,
		SpanExemplars: cf.SpanExemplars,
		SampleSeed:    cf.SampleSeed,
		SampleRate:    cf.SampleRate,
		Flight:        flight,
	})
	if err != nil {
		flog.Close()
		fatal(err)
	}
	if addr := pickDebugAddr(debugAddr, cf.Debug); addr != "" {
		dbg, err := wire.ServeDebug(wire.DebugConfig{
			Addr:    addr,
			Role:    "coord",
			Process: "coord",
			Cluster: co.Cluster,
			Wire:    co.WireMetrics(),
		})
		if err != nil {
			fatal(err)
		}
		defer dbg.Close()
		fmt.Printf("sccd: coordinator debug plane on http://%s (policy %s)\n", dbg.Addr(), co.Cluster.PolicyName())
	}
	if n := len(co.Adopted); n > 0 {
		fmt.Printf("sccd: coordinator adopted %d logged commit decision(s) from %s\n", n, cf.Log)
		for sid, rep := range co.Reports {
			if len(rep.Redone)+len(rep.PresumedAborted)+len(rep.Aborted) > 0 {
				fmt.Printf("sccd:   site %d reconcile: redone=%v presumed-aborted=%v orphans-aborted=%v\n",
					sid, rep.Redone, rep.PresumedAborted, rep.Aborted)
			}
		}
	}
	fmt.Printf("sccd: coordinator serving %d sites on %s (log %s)\n", cf.NumSites(), co.Addr(), cf.Log)
	quit := make(chan os.Signal, 1)
	watchSignals(quit, flight)
	co.Close()
}
