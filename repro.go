// Package repro is a faithful Go implementation of Badrinath &
// Ramamritham, "Semantics-Based Concurrency Control: Beyond
// Commutativity" (ICDE 1987 / ACM TODS 17(1), 1992): a concurrency
// controller for atomic data types that exploits *recoverability* — a
// conflict predicate weaker than commutativity that still avoids
// cascading aborts — plus the paper's full simulation study.
//
// The package re-exports the library's public surface; implementations
// live under internal/ (see DESIGN.md for the system inventory).
//
// Quick start — transactions are written once against the Store/Txn
// interfaces and run unchanged on a single-scheduler DB or a sharded /
// distributed cluster (NewCluster); Store.Run restarts the function on
// retryable aborts (deadlock, commit-dependency cycle) with backoff:
//
//	db := repro.NewDB(repro.Options{})
//	db.Register(1, repro.Stack{}, repro.StackTable())
//	err := db.Run(ctx, func(t repro.Txn) error {
//	    _, err := t.Do(1, repro.Push(4)) // recoverable: runs immediately
//	    return err                       // nil -> Run commits (pseudo counts)
//	})
//
// Abort outcomes are typed: errors.Is(err, repro.ErrTxnAborted)
// matches every abort, ErrDeadlock / ErrConflictCycle the specific
// reasons, and errors.As(err, *(**repro.ErrAborted)) exposes the victim
// and reason. Blocking calls have context-aware variants (Txn.DoCtx
// withdraws a parked request on cancellation; Txn.Done reports the
// real commit of a pseudo-committed transaction).
package repro

import (
	"repro/internal/adt"
	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ---- Concurrency controller (internal/core, internal/dist) ----

// Core protocol types.
type (
	// Store is the transactional client API; DB and the cluster
	// returned by NewCluster both implement it.
	Store = core.Store
	// Txn is one transaction's session on a Store.
	Txn = core.Txn
	// ErrAborted is the typed abort outcome (errors.As target).
	ErrAborted = core.ErrAborted
	// DB is the single-scheduler, goroutine-friendly Store.
	DB = core.DB
	// Handle is one transaction's session on a DB (the concrete Txn).
	Handle = core.Handle
	// Scheduler is the deterministic event-style controller beneath DB.
	Scheduler = core.Scheduler
	// Participant is the per-site scheduler abstraction: what a
	// distributed coordinator (internal/dist, §6 of the paper) needs
	// from a local scheduler. Scheduler implements it.
	Participant = core.Participant
	// Options configures the protocol (predicate, recovery strategy,
	// fairness, debugging).
	Options = core.Options
	// TxnID identifies a transaction.
	TxnID = core.TxnID
	// ObjectID identifies a database object.
	ObjectID = core.ObjectID
	// Decision is the immediate outcome of a Scheduler request.
	Decision = core.Decision
	// Effects reports downstream consequences of a scheduler call.
	Effects = core.Effects
	// Stats are cumulative protocol counters.
	Stats = core.Stats
	// CommitStatus distinguishes real commits from pseudo-commits.
	CommitStatus = core.CommitStatus
	// Predicate selects recoverability or the commutativity baseline.
	Predicate = core.Predicate
	// Recovery selects the §4.4 recovery strategy.
	Recovery = core.Recovery
)

// Protocol constants and constructors.
var (
	// NewDB builds the single-scheduler blocking Store.
	NewDB = core.NewDB
	// NewScheduler builds the raw controller.
	NewScheduler = core.NewScheduler
	// RunStore is the retry loop behind Store.Run, usable with any
	// Store implementation.
	RunStore = core.RunStore
	// ErrTxnAborted matches every abort outcome under errors.Is.
	ErrTxnAborted = core.ErrTxnAborted
	// ErrDeadlock matches aborts caused by a wait-for cycle.
	ErrDeadlock = core.ErrDeadlock
	// ErrConflictCycle matches aborts caused by a commit-dependency
	// cycle.
	ErrConflictCycle = core.ErrConflictCycle
	// ErrSiteFailed matches aborts caused by a participant site crash
	// (fault-tolerant clusters only; retryable).
	ErrSiteFailed = core.ErrSiteFailed
	// ErrClosed is returned by operations on a closed Store.
	ErrClosed = core.ErrClosed
	// ErrTxnDone is returned for operations on an already-committed
	// transaction.
	ErrTxnDone = core.ErrTxnDone
	// ErrUnknownObject is returned by operations on an object id that
	// was never registered (and that no factory constructs).
	ErrUnknownObject = core.ErrUnknownObject
)

// NewCluster builds the §6 distributed / sharded Store: n sites, each
// with an independent scheduler, objects partitioned by id modulo n,
// cross-site dependencies mirrored at a commit coordinator. The full
// distributed API (routers, observers, per-site inspection) lives in
// internal/dist; this constructor covers the common case through the
// same Store interface DB implements.
func NewCluster(n int, opts Options) (Store, error) {
	c, err := dist.New(n, opts, nil, nil)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// FaultStore is a Store whose participant sites live under the
// crash-stop fault model: sites can be crashed (dropping all volatile
// scheduler state) and restarted (recovering held commits against the
// coordinator's presumed-abort decision log). Transactions that lose a
// participant abort with ErrSiteFailed — retryable, like deadlocks.
type FaultStore interface {
	Store
	// NumSites returns the number of participant sites.
	NumSites() int
	// CrashSite fails one site: parked requests are woken with the
	// failure verdict, in-flight transactions that touched it abort
	// with ErrSiteFailed, unlogged held commits are presumed aborted.
	CrashSite(site int) error
	// RestartSite recovers the site: committed state is rebuilt from
	// its durable image and prepared transactions with a logged commit
	// are redone; the rest are presumed aborted.
	RestartSite(site int) error
}

// NewFaultTolerantCluster is NewCluster under the crash-stop fault
// model (internal/fault): every site is crashable and the coordinator
// runs a presumed-abort decision log. See DESIGN.md, "Failure model".
func NewFaultTolerantCluster(n int, opts Options) (FaultStore, error) {
	c, err := dist.NewWithConfig(dist.Config{Sites: n, Opts: opts, FaultTolerant: true})
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Predicate, recovery and status values.
const (
	PredRecoverability = core.PredRecoverability
	PredCommutativity  = core.PredCommutativity
	RecoveryIntentions = core.RecoveryIntentions
	RecoveryUndo       = core.RecoveryUndo
	Committed          = core.Committed
	PseudoCommitted    = core.PseudoCommitted
)

// ---- Atomic data types (internal/adt) ----

// Data type and operation types.
type (
	// Op is an operation invocation.
	Op = adt.Op
	// Ret is an operation's return value.
	Ret = adt.Ret
	// Type is an atomic data type (state space + operations).
	Type = adt.Type
	// State is an object state.
	State = adt.State
	// Page is the read/write object of §3.2.1.
	Page = adt.Page
	// Stack is the push/pop/top object of §3.2.2.
	Stack = adt.Stack
	// Set is the insert/delete/member object of §3.2.3.
	Set = adt.Set
	// KTable is the keyed table of §3.2.4.
	KTable = adt.KTable
	// PageState is a Page's concrete state (inspection).
	PageState = adt.PageState
	// StackState is a Stack's concrete state (inspection).
	StackState = adt.StackState
)

// Operation constructors for the built-in types.

// Push builds a stack push.
func Push(v int) Op { return Op{Name: adt.StackPush, Arg: v, HasArg: true} }

// Pop builds a stack pop.
func Pop() Op { return Op{Name: adt.StackPop} }

// Top builds a stack top.
func Top() Op { return Op{Name: adt.StackTop} }

// Read builds a page read.
func Read() Op { return Op{Name: adt.PageRead} }

// Write builds a page write.
func Write(v int) Op { return Op{Name: adt.PageWrite, Arg: v, HasArg: true} }

// Insert builds a set insert.
func Insert(v int) Op { return Op{Name: adt.SetInsert, Arg: v, HasArg: true} }

// Delete builds a set delete.
func Delete(v int) Op { return Op{Name: adt.SetDelete, Arg: v, HasArg: true} }

// Member builds a set membership test.
func Member(v int) Op { return Op{Name: adt.SetMember, Arg: v, HasArg: true} }

// TableInsert builds a table insert of (key, item).
func TableInsert(key, item int) Op {
	return Op{Name: adt.TableInsert, Arg: key, HasArg: true, Aux: item, HasAux: true}
}

// TableDelete builds a table delete of key.
func TableDelete(key int) Op { return Op{Name: adt.TableDelete, Arg: key, HasArg: true} }

// TableLookup builds a table lookup of key.
func TableLookup(key int) Op { return Op{Name: adt.TableLookup, Arg: key, HasArg: true} }

// TableSize builds a table size query.
func TableSize() Op { return Op{Name: adt.TableSize} }

// TableModify builds a table modify of (key, item).
func TableModify(key, item int) Op {
	return Op{Name: adt.TableModify, Arg: key, HasArg: true, Aux: item, HasAux: true}
}

// Return codes.
const (
	RetCodeOK       = adt.OK
	RetCodeFail     = adt.Fail
	RetCodeYes      = adt.Yes
	RetCodeNo       = adt.No
	RetCodeNull     = adt.Null
	RetCodeNotFound = adt.NotFound
	RetCodeValue    = adt.Value
	RetCodeCount    = adt.Count
)

// ---- Compatibility tables (internal/compat) ----

// Compatibility types.
type (
	// CompatTable is a commutativity + recoverability table.
	CompatTable = compat.Table
	// Classifier classifies operation pairs (commutes / recoverable /
	// conflict).
	Classifier = compat.Classifier
)

// Paper tables and derivation.
var (
	// PageTable returns the paper's Tables I–II.
	PageTable = compat.PageTable
	// StackTable returns the paper's Tables III–IV.
	StackTable = compat.StackTable
	// SetTable returns the paper's Tables V–VI.
	SetTable = compat.SetTable
	// KTableTable returns the paper's Tables VII–VIII.
	KTableTable = compat.KTableTable
	// DeriveTable recomputes a type's tables from Definitions 1–2.
	DeriveTable = compat.Derive
)

// ---- Simulation (internal/sim, internal/workload, internal/metrics) ----

// Simulation types.
type (
	// SimConfig parameterises the closed queuing model (Tables IX–X).
	SimConfig = sim.Config
	// RunMetrics are one run's measured metrics (§5.4).
	RunMetrics = metrics.Run
	// Sample is a multi-run aggregate (mean, stddev, 90% CI).
	Sample = metrics.Sample
	// WorkloadGenerator produces transactions and the database.
	WorkloadGenerator = workload.Generator
	// ReadWriteWorkload is the §5.5.1 read/write model.
	ReadWriteWorkload = workload.ReadWrite
	// AbstractWorkload is the §5.5.2 abstract-data-type model.
	AbstractWorkload = workload.Abstract
	// MixWorkload is a stack/set/table mix over the paper's real types.
	MixWorkload = workload.Mix
)

// Simulation entry points.
var (
	// DefaultSimConfig returns the paper's nominal parameters.
	DefaultSimConfig = sim.Default
	// Simulate runs one simulation.
	Simulate = sim.Simulate
	// SimulateRuns runs n seeds and returns per-run metrics.
	SimulateRuns = sim.SimulateRuns
	// AggregateRuns aggregates a metric across runs.
	AggregateRuns = metrics.AggregateRuns
)

// ---- Experiments (internal/experiments) ----

// Experiment types.
type (
	// Experiment is a declarative figure/ablation definition.
	Experiment = experiments.Spec
	// ExperimentOpts scales an experiment run.
	ExperimentOpts = experiments.RunOpts
	// ExperimentResult is a completed experiment.
	ExperimentResult = experiments.Result
)

// Experiment entry points.
var (
	// ExperimentIDs lists every figure and ablation.
	ExperimentIDs = experiments.IDs
	// RunExperiment executes one experiment by id ("fig4" … "fig18",
	// "ablation-…").
	RunExperiment = experiments.Run
	// LookupExperiment finds an experiment definition.
	LookupExperiment = experiments.Lookup
	// DefaultExperimentOpts is the laptop-scale default.
	DefaultExperimentOpts = experiments.DefaultOpts
	// PaperExperimentOpts is the paper's full scale (50,000
	// completions × 10 runs per point).
	PaperExperimentOpts = experiments.PaperOpts
	// TablesReport renders Tables I–VIII, paper vs derived.
	TablesReport = experiments.TablesReport
	// ParametersReport renders Tables IX–X.
	ParametersReport = experiments.ParametersReport
)
